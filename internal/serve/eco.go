package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/core"
	"rotaryclk/internal/eco"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/obs"
	"rotaryclk/internal/placer"
	"rotaryclk/internal/stop"
)

// maxECODeltas caps the delta batch one request may carry. ECO is for small
// edits; a batch past this size should be a fresh placement job instead.
const maxECODeltas = 64

// maxDeltaIndex bounds cell/net indices at admission. The real bound is the
// circuit size, which eco.Apply enforces; this only keeps absurd indices out
// of error messages and logs.
const maxDeltaIndex = 1 << 31

// ECORequest is the wire format of one incremental re-optimization job: a
// circuit spec identifying the base placement (built once per spec and
// cached, exactly like job templates) plus the delta batch to absorb.
type ECORequest struct {
	Circuit CircuitSpec `json:"circuit"`
	Rings   int         `json:"rings,omitempty"` // default 16
	Iters   int         `json:"iters,omitempty"` // base-flow iterations, default 5

	// Deltas is the edit batch, applied in order with sequence semantics.
	Deltas []eco.Delta `json:"deltas"`

	// DeadlineMS bounds the whole request, base-state wait and queue time
	// included. 0 uses the server default.
	DeadlineMS int `json:"deadline_ms,omitempty"`

	// Strict turns a mid-apply failure into a 422 instead of a rolled-back
	// degraded 200.
	Strict bool `json:"strict,omitempty"`

	// Telemetry asks for the request's deterministic counters and span
	// trace in the response.
	Telemetry bool `json:"telemetry,omitempty"`
}

// ParseECORequest decodes and validates one ECO request with the same
// discipline as ParseJobRequest: unknown fields are rejected, every numeric
// field is range-checked, and every delta is shallowly validated (known op,
// sane indices, finite coordinates) so the worker only ever sees semantic
// failures, which eco.Apply reports per delta.
func ParseECORequest(data []byte, lim Limits) (*ECORequest, error) {
	if lim.MaxCells <= 0 {
		lim.MaxCells = 50000
	}
	if lim.MaxDeadline <= 0 {
		lim.MaxDeadline = 5 * time.Minute
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req ECORequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding eco request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding eco request: trailing data after JSON object")
	}
	if req.Circuit.Cells < 1 || req.Circuit.Cells > lim.MaxCells {
		return nil, fmt.Errorf("circuit.cells %d out of range [1, %d]", req.Circuit.Cells, lim.MaxCells)
	}
	if req.Circuit.FlipFlops < 0 || req.Circuit.FlipFlops > req.Circuit.Cells {
		return nil, fmt.Errorf("circuit.flipflops %d out of range [0, %d]", req.Circuit.FlipFlops, req.Circuit.Cells)
	}
	if req.Rings < 0 || req.Rings > 1024 {
		return nil, fmt.Errorf("rings %d out of range [0, 1024]", req.Rings)
	}
	if req.Iters < 0 || req.Iters > 100 {
		return nil, fmt.Errorf("iters %d out of range [0, 100]", req.Iters)
	}
	if req.DeadlineMS < 0 || time.Duration(req.DeadlineMS)*time.Millisecond > lim.MaxDeadline {
		return nil, fmt.Errorf("deadline_ms %d out of range [0, %d]", req.DeadlineMS, lim.MaxDeadline.Milliseconds())
	}
	if len(req.Deltas) == 0 {
		return nil, fmt.Errorf("deltas: empty (an ECO request must edit something)")
	}
	if len(req.Deltas) > maxECODeltas {
		return nil, fmt.Errorf("deltas: %d exceeds the per-request cap %d", len(req.Deltas), maxECODeltas)
	}
	for i, d := range req.Deltas {
		switch d.Op {
		case eco.OpMoveFF, eco.OpAddFF, eco.OpRemoveFF, eco.OpRetargetRing, eco.OpEditNet:
		default:
			return nil, fmt.Errorf("deltas[%d]: unknown op %q", i, d.Op)
		}
		if d.Cell < 0 || d.Cell >= maxDeltaIndex {
			return nil, fmt.Errorf("deltas[%d]: cell %d out of range [0, %d)", i, d.Cell, maxDeltaIndex)
		}
		if d.Net < 0 || d.Net >= maxDeltaIndex {
			return nil, fmt.Errorf("deltas[%d]: net %d out of range [0, %d)", i, d.Net, maxDeltaIndex)
		}
		if d.Ring < 0 || d.Ring > 1024 {
			return nil, fmt.Errorf("deltas[%d]: ring %d out of range [0, 1024]", i, d.Ring)
		}
		if math.IsNaN(d.X) || math.IsInf(d.X, 0) || math.IsNaN(d.Y) || math.IsInf(d.Y, 0) {
			return nil, fmt.Errorf("deltas[%d]: non-finite coordinates", i)
		}
	}
	return &req, nil
}

// deadline resolves the request's effective time budget.
func (r *ECORequest) deadline(def time.Duration) time.Duration {
	if r.DeadlineMS > 0 {
		return time.Duration(r.DeadlineMS) * time.Millisecond
	}
	return def
}

func (r *ECORequest) rings() int {
	if r.Rings > 0 {
		return r.Rings
	}
	return 16
}

// baseKey identifies the shareable base state: the circuit spec plus every
// knob that shapes the base flow's answer.
func (r *ECORequest) baseKey() string {
	return fmt.Sprintf("c%d-f%d-s%d-r%d-i%d", r.Circuit.Cells, r.Circuit.FlipFlops, r.Circuit.Seed, r.rings(), r.Iters)
}

func (r *ECORequest) spec() netlist.GenSpec {
	return netlist.GenSpec{
		Name:      fmt.Sprintf("eco-c%d-f%d-s%d", r.Circuit.Cells, r.Circuit.FlipFlops, r.Circuit.Seed),
		Cells:     r.Circuit.Cells,
		FlipFlops: r.Circuit.FlipFlops,
		Seed:      r.Circuit.Seed,
	}
}

// ECOResponse is the wire format of a completed ECO request: what the apply
// did (the Outcome, flattened) plus the re-measured design quality. On a
// degraded response the state was rolled back and Final describes the
// restored pre-edit design; the triggering failure is the last event.
type ECOResponse struct {
	Circuit  string   `json:"circuit"`
	Degraded bool     `json:"degraded"`
	Events   []string `json:"events,omitempty"`

	Applied       int  `json:"applied"`
	NoOps         int  `json:"noops"`
	DirtyCells    int  `json:"dirty_cells"`
	MovedCells    int  `json:"moved_cells"`
	DirtyFFs      int  `json:"dirty_ffs"`
	SystemPatched int  `json:"system_patched"`
	SystemRebuilt bool `json:"system_rebuilt"`
	SchedRounds   int  `json:"sched_rounds"`

	WorkSlackPS float64      `json:"work_slack_ps"`
	TapTotalUM  float64      `json:"tap_total_um"`
	Final       core.Metrics `json:"final"`

	ElapsedMS float64 `json:"elapsed_ms"`
	BaseHit   bool    `json:"base_hit"`

	Counters json.RawMessage `json:"counters,omitempty"`
	Trace    string          `json:"trace,omitempty"`
}

// ecoBase is the per-spec state every ECO request against the same base
// placement shares: the placed circuit (cloned per request — requests mutate
// their clone), the completed result that seeds each request's ECO state,
// the CSR template forked per request, and the tapping cache the base run
// filled (internally synchronized, shared directly).
type ecoBase struct {
	circuit *netlist.Circuit
	res     *core.Result
	sys     *placer.System
	tap     *assign.TapCache
}

// ecoBaseCache is the keyed singleflight for base placements, the same
// discipline as templateCache: one build per spec no matter how many
// concurrent requests arrive, failed builds evicted.
type ecoBaseCache struct {
	mu sync.Mutex
	m  map[string]*ecoBaseEntry
}

type ecoBaseEntry struct {
	ready chan struct{} // closed when b/err are set
	b     *ecoBase
	err   error
}

func (c *ecoBaseCache) init() {
	c.m = make(map[string]*ecoBaseEntry)
}

func (c *ecoBaseCache) get(key string, build func() (*ecoBase, error)) (b *ecoBase, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.mu.Unlock()
		<-e.ready
		return e.b, true, e.err
	}
	e = &ecoBaseEntry{ready: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.b, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.b, false, e.err
}

// Len reports the number of cached bases (testing hook).
func (c *ecoBaseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// buildECOBase runs the full flow once for a spec and captures everything
// later ECO requests reuse. Like template builds, the base run carries no
// deadline and no registry — it is a shared cost no single request should
// account for or be able to truncate for everyone else.
func (s *Server) buildECOBase(req *ECORequest) (*ecoBase, error) {
	c, err := netlist.Generate(req.spec())
	if err != nil {
		return nil, err
	}
	sys, err := placer.NewSystem(c, nil)
	if err != nil {
		return nil, err
	}
	tap := assign.NewTapCache()
	cfg := core.Config{
		NumRings:    req.rings(),
		MaxIters:    req.Iters,
		Parallelism: s.perJobWorkers(),
		System:      sys,
		TapCache:    tap,
	}
	res, err := s.runFlow(c, cfg)
	if err != nil {
		return nil, err
	}
	if res == nil || res.Degraded || res.Assign == nil {
		return nil, fmt.Errorf("base flow yielded no clean state to edit")
	}
	return &ecoBase{circuit: c, res: res, sys: sys, tap: tap}, nil
}

// handleECO admits, runs, and answers one ECO request through the same
// queue, worker pool, deadline, and drain machinery as placement jobs.
func (s *Server) handleECO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	req, err := ParseECORequest(body, s.cfg.limits())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	tok, release := stop.WithTimeout(req.deadline(s.cfg.DefaultDeadline))
	j := &job{ecoReq: req, tok: tok, release: release, admitted: time.Now(), done: make(chan struct{})}
	if !s.admit(w, j) {
		return
	}
	s.awaitAndReply(w, j)
}

// executeECO runs one admitted ECO request: pick up (or build) the shared
// base placement, clone it, seed a fresh ECO state over the clone, and
// absorb the delta batch under the request's token and registry. The clone
// means a failed or degraded apply never poisons the shared base.
func (s *Server) executeECO(j *job) {
	start := j.admitted
	defer func() {
		s.mu.Lock()
		delete(s.active, j)
		s.mu.Unlock()
		j.release()
		close(j.done)
	}()

	req := j.ecoReq
	base, hit, err := s.ecoBases.get(req.baseKey(), func() (*ecoBase, error) {
		return s.buildECOBase(req)
	})
	if err != nil {
		j.status, j.errMsg = 500, fmt.Sprintf("building ECO base placement: %v", err)
		s.stats.add(&s.stats.failed, 1)
		return
	}
	if hit {
		s.stats.add(&s.stats.ecoBaseHits, 1)
	} else {
		s.stats.add(&s.stats.ecoBaseBuilds, 1)
	}

	clone := base.circuit.Clone()
	reg := obs.NewRegistry()
	cfg := core.Config{
		NumRings:    req.rings(),
		MaxIters:    req.Iters,
		Strict:      req.Strict,
		Parallelism: s.perJobWorkers(),
		Obs:         reg,
		Stop:        j.tok,
		System:      base.sys,
		TapCache:    base.tap,
	}
	st, err := core.NewECOState(clone, cfg, base.res)
	if err != nil {
		j.status, j.errMsg = 500, fmt.Sprintf("seeding ECO state: %v", err)
		s.stats.add(&s.stats.failed, 1)
		return
	}

	res, runErr, panicked := s.runECOProtected(st, req.Deltas, cfg, eco.Options{Strict: req.Strict})
	elapsed := time.Since(start)
	if panicked {
		s.stats.add(&s.stats.panics, 1)
		j.status, j.errMsg = 500, fmt.Sprintf("job panicked: %v", runErr)
		return
	}
	if runErr != nil {
		// Invalid deltas and strict-mode failures land here; a deadline in
		// non-strict mode comes back as a degraded (rolled-back) outcome.
		s.stats.add(&s.stats.failed, 1)
		j.status, j.errMsg = 422, runErr.Error()
		return
	}

	out := res.Outcome
	resp := &ECOResponse{
		Circuit:       clone.Name,
		Degraded:      out.Degraded,
		Events:        out.Events,
		Applied:       out.Deltas,
		NoOps:         out.NoOps,
		DirtyCells:    out.DirtyCells,
		MovedCells:    out.MovedCells,
		DirtyFFs:      out.DirtyFFs,
		SystemPatched: out.SystemPatched,
		SystemRebuilt: out.SystemRebuilt,
		SchedRounds:   out.SchedRounds,
		WorkSlackPS:   sanitize(out.WorkSlack),
		TapTotalUM:    sanitize(out.Total),
		Final:         sanitizeMetrics(res.Final),
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		BaseHit:       hit,
	}
	if req.Telemetry {
		snap := reg.Snapshot()
		resp.Counters = json.RawMessage(snap.CountersJSON())
		resp.Trace = snap.Text()
	}
	j.status, j.resp = 200, resp

	s.stats.add(&s.stats.completed, 1)
	if out.Degraded {
		s.stats.add(&s.stats.degraded, 1)
	}
	if j.tok.Stopped() {
		s.stats.add(&s.stats.deadlined, 1)
	}
	s.stats.observe(elapsed)
}

// runECOProtected calls the ECO entry point with a per-request panic guard.
func (s *Server) runECOProtected(st *eco.State, deltas []eco.Delta, cfg core.Config, opt eco.Options) (res *core.ECOResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, panicked = nil, fmt.Errorf("%v", r), true
		}
	}()
	res, err = s.runECO(st, deltas, cfg, opt)
	return res, err, false
}
