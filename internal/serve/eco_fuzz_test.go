package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"rotaryclk/internal/eco"
)

// FuzzParseECORequest hammers the /v1/eco admission decoder with arbitrary
// bytes and asserts its contract: it never panics, any request it accepts is
// fully inside the admission bounds — every delta shallowly valid, every
// coordinate finite — and an accepted request survives a marshal/reparse
// round trip byte-identically (no partially validated state leaks out).
func FuzzParseECORequest(f *testing.F) {
	seeds := []string{
		`{"circuit":{"cells":60,"flipflops":8,"seed":1},"deltas":[{"op":"move_ff","cell":3,"x":120.5,"y":88.25}]}`,
		`{"circuit":{"cells":1500,"flipflops":150,"seed":7},"rings":4,"iters":2,"deltas":[{"op":"add_ff","cell":12},{"op":"remove_ff","cell":9},{"op":"retarget_ring","cell":9,"ring":3}]}`,
		`{"circuit":{"cells":400,"flipflops":40,"seed":2},"deltas":[{"op":"edit_net","net":17,"cell":30,"add":true}],"deadline_ms":100,"strict":true,"telemetry":true}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":1},"deltas":[]}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":1}}`,
		`{"circuit":{"cells":0},"deltas":[{"op":"add_ff","cell":1}]}`,
		`{"circuit":{"cells":60,"flipflops":61},"deltas":[{"op":"add_ff","cell":1}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"teleport_ff","cell":1}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"move_ff","cell":-1,"x":1,"y":1}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"move_ff","cell":1,"x":1e999,"y":1}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"retarget_ring","cell":1,"ring":4096}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"edit_net","net":-3,"cell":1}]}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"add_ff","cell":1}],"unknown_knob":1}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"add_ff","cell":1}]}{"again":true}`,
		`{"circuit":{"cells":60},"deltas":[{"op":"add_ff","cell":1,"x":0}],"deadline_ms":-1}`,
		`[]`,
		`null`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxCells: 50000, MaxDeadline: 5 * time.Minute}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseECORequest(data, lim)
		if err != nil {
			if req != nil {
				t.Fatal("error with a non-nil request")
			}
			return
		}
		if req.Circuit.Cells < 1 || req.Circuit.Cells > lim.MaxCells {
			t.Fatalf("accepted cells %d outside [1, %d]", req.Circuit.Cells, lim.MaxCells)
		}
		if req.Circuit.FlipFlops < 0 || req.Circuit.FlipFlops > req.Circuit.Cells {
			t.Fatalf("accepted flipflops %d with %d cells", req.Circuit.FlipFlops, req.Circuit.Cells)
		}
		if req.rings() < 1 || req.rings() > 1024 {
			t.Fatalf("effective rings %d outside [1, 1024]", req.rings())
		}
		if req.Iters < 0 || req.Iters > 100 {
			t.Fatalf("accepted iters %d", req.Iters)
		}
		if d := req.deadline(30 * time.Second); d <= 0 || d > lim.MaxDeadline {
			t.Fatalf("effective deadline %v outside (0, %v]", d, lim.MaxDeadline)
		}
		if len(req.Deltas) < 1 || len(req.Deltas) > maxECODeltas {
			t.Fatalf("accepted %d deltas outside [1, %d]", len(req.Deltas), maxECODeltas)
		}
		for i, d := range req.Deltas {
			switch d.Op {
			case eco.OpMoveFF, eco.OpAddFF, eco.OpRemoveFF, eco.OpRetargetRing, eco.OpEditNet:
			default:
				t.Fatalf("accepted delta %d with op %q", i, d.Op)
			}
			if d.Cell < 0 || d.Cell >= maxDeltaIndex || d.Net < 0 || d.Net >= maxDeltaIndex {
				t.Fatalf("accepted delta %d with cell/net %d/%d", i, d.Cell, d.Net)
			}
			if d.Ring < 0 || d.Ring > 1024 {
				t.Fatalf("accepted delta %d with ring %d", i, d.Ring)
			}
			if math.IsNaN(d.X) || math.IsInf(d.X, 0) || math.IsNaN(d.Y) || math.IsInf(d.Y, 0) {
				t.Fatalf("accepted delta %d with non-finite coordinates", i)
			}
		}
		if req.baseKey() == "" {
			t.Fatal("empty base key")
		}
		// Round trip: an accepted request re-encodes to a request the
		// decoder accepts and that encodes identically — field-order and
		// value-preserving, with no hidden state.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshaling accepted request: %v", err)
		}
		again, err := ParseECORequest(enc, lim)
		if err != nil {
			t.Fatalf("reparsing %s: %v", enc, err)
		}
		enc2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-marshaling: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the request:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
