package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rotaryclk/internal/core"
	"rotaryclk/internal/eco"
	"rotaryclk/internal/netlist"
)

// postECO runs one /v1/eco request through the server synchronously.
func postECO(s *Server, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/eco", strings.NewReader(body)))
	return rr
}

func postECOAsync(s *Server, body string) <-chan *httptest.ResponseRecorder {
	ch := make(chan *httptest.ResponseRecorder, 1)
	go func() { ch <- postECO(s, body) }()
	return ch
}

// ecoProbe regenerates the request's circuit and returns a flip-flop cell ID
// plus an in-die move target (the cell-position centroid — inside the die by
// convexity), so tests can build deltas that are valid against the real
// netlist without hard-coding generator internals.
func ecoProbe(t *testing.T, cells, ffs int, seed int64) (ffCell int, x, y float64) {
	t.Helper()
	c, err := netlist.Generate(netlist.GenSpec{Name: "probe", Cells: cells, FlipFlops: ffs, Seed: seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ffCell = -1
	var sx, sy float64
	for id, cell := range c.Cells {
		if cell.Kind == netlist.FF && ffCell < 0 {
			ffCell = id
		}
		sx += cell.Pos.X
		sy += cell.Pos.Y
	}
	if ffCell < 0 {
		t.Fatal("generated circuit has no flip-flop")
	}
	n := float64(len(c.Cells))
	return ffCell, sx / n, sy / n
}

// TestECOWarmBaseHit: the first ECO request for a spec builds the base
// placement; the second reuses it (base_hit true, one build + one hit in the
// stats) and absorbs a real move without a system rebuild.
func TestECOWarmBaseHit(t *testing.T) {
	s := New(testConfig())
	defer drainNow(t, s)

	ff, x, y := ecoProbe(t, 60, 8, 1)
	body := fmt.Sprintf(
		`{"circuit":{"cells":60,"flipflops":8,"seed":1},"rings":4,"iters":2,"deltas":[{"op":"move_ff","cell":%d,"x":%.4f,"y":%.4f}]}`,
		ff, x, y)

	var resps [2]ECOResponse
	for i := range resps {
		rr := postECO(s, body)
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, rr.Code, rr.Body)
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &resps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if resps[0].BaseHit {
		t.Error("first request claims a base hit")
	}
	if !resps[1].BaseHit {
		t.Error("second request missed the warm base")
	}
	for i, resp := range resps {
		if resp.Degraded {
			t.Errorf("request %d degraded: %v", i, resp.Events)
		}
		if resp.Applied != 1 || resp.NoOps != 0 {
			t.Errorf("request %d: applied/noops = %d/%d, want 1/0", i, resp.Applied, resp.NoOps)
		}
		if resp.SystemRebuilt {
			t.Errorf("request %d: a pure move forced a system rebuild", i)
		}
		if resp.DirtyFFs < 1 {
			t.Errorf("request %d: moved flip-flop not re-routed (dirty_ffs=%d)", i, resp.DirtyFFs)
		}
	}
	if b := s.stats.ecoBaseBuilds.Load(); b != 1 {
		t.Errorf("ecoBaseBuilds = %d, want 1", b)
	}
	if h := s.stats.ecoBaseHits.Load(); h != 1 {
		t.Errorf("ecoBaseHits = %d, want 1", h)
	}
	if s.ecoBases.Len() != 1 {
		t.Errorf("base cache len %d, want 1", s.ecoBases.Len())
	}
}

// TestECODeadlineDegrades: a 1ms deadline is consumed by the (untimed,
// shared) base build, so the apply starts with its token already fired and
// must answer 200 with a rolled-back degraded outcome, not an error — the
// non-strict contract of the flow carried over to ECO.
func TestECODeadlineDegrades(t *testing.T) {
	s := New(testConfig())
	defer drainNow(t, s)
	// Pad the (untimed) base build past the request deadline so the apply
	// deterministically starts with a fired token, machine speed aside.
	realFlow := s.runFlow
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		time.Sleep(10 * time.Millisecond)
		return realFlow(c, cfg)
	}

	ff, x, y := ecoProbe(t, 60, 8, 2)
	body := fmt.Sprintf(
		`{"circuit":{"cells":60,"flipflops":8,"seed":2},"rings":4,"iters":2,"deadline_ms":1,"deltas":[{"op":"move_ff","cell":%d,"x":%.4f,"y":%.4f}]}`,
		ff, x, y)
	rr := postECO(s, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rr.Code, rr.Body)
	}
	var resp ECOResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatalf("deadlined ECO not degraded: %+v", resp)
	}
	if len(resp.Events) == 0 || !strings.Contains(resp.Events[len(resp.Events)-1], "rolled back") {
		t.Errorf("degraded response without a rollback event: %v", resp.Events)
	}
	if got := s.stats.deadlined.Load(); got != 1 {
		t.Errorf("deadlined = %d, want 1", got)
	}

	// Strict mode turns the same deadline into a 422, never a silent
	// rollback. A fresh spec keeps the base cold so the build consumes the
	// deadline again (the warm-base path would finish inside 1ms).
	ff6, x6, y6 := ecoProbe(t, 60, 8, 6)
	strictBody := fmt.Sprintf(
		`{"circuit":{"cells":60,"flipflops":8,"seed":6},"rings":4,"iters":2,"deadline_ms":1,"strict":true,"deltas":[{"op":"move_ff","cell":%d,"x":%.4f,"y":%.4f}]}`,
		ff6, x6, y6)
	if rr := postECO(s, strictBody); rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("strict deadlined ECO: status %d body %s, want 422", rr.Code, rr.Body)
	}
}

// TestECODrainAnswersInFlight: Drain lets an in-flight ECO request finish
// and answer its caller while new ECO work is rejected with 503 — the same
// graceful-drain contract placement jobs have.
func TestECODrainAnswersInFlight(t *testing.T) {
	s := New(testConfig())
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.runECO = func(st *eco.State, deltas []eco.Delta, cfg core.Config, opt eco.Options) (*core.ECOResult, error) {
		started <- struct{}{}
		<-unblock
		return &core.ECOResult{Outcome: &eco.Outcome{Deltas: len(deltas)}}, nil
	}

	ff, x, y := ecoProbe(t, 60, 8, 3)
	body := fmt.Sprintf(
		`{"circuit":{"cells":60,"flipflops":8,"seed":3},"rings":4,"iters":2,"deltas":[{"op":"move_ff","cell":%d,"x":%.4f,"y":%.4f}]}`,
		ff, x, y)

	inflight := postECOAsync(s, body)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", s.Draining)

	if rr := postECO(s, body); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("ECO during drain: status %d, want 503", rr.Code)
	}

	close(unblock)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rr := <-inflight
	if rr.Code != http.StatusOK {
		t.Fatalf("in-flight ECO after drain: status %d body %s", rr.Code, rr.Body)
	}
	var resp ECOResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 1 {
		t.Errorf("in-flight ECO applied %d deltas, want 1", resp.Applied)
	}
}

// TestECOBadRequests: malformed ECO requests answer 400 at admission; a
// well-formed request whose delta is semantically invalid against the real
// circuit answers 422 from the worker.
func TestECOBadRequests(t *testing.T) {
	s := New(testConfig())
	defer drainNow(t, s)
	cases := []string{
		``,
		`{`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4}}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[]}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[{"op":"teleport_ff","cell":1}]}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[{"op":"move_ff","cell":-1}]}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[{"op":"retarget_ring","cell":1,"ring":4096}]}`,
		`{"circuit":{"cells":0},"deltas":[{"op":"add_ff","cell":1}]}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[{"op":"add_ff","cell":1}],"typo":1}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":4},"deltas":[{"op":"add_ff","cell":1}]}{"again":true}`,
	}
	for _, body := range cases {
		if rr := postECO(s, body); rr.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rr.Code)
		}
	}

	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/eco", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eco: status %d, want 405", rr.Code)
	}

	// Shallowly valid, semantically impossible: the cell index is far past
	// the generated circuit. Admission passes, eco.Apply rejects, 422.
	rr = postECO(s, `{"circuit":{"cells":60,"flipflops":8,"seed":4},"rings":4,"iters":2,"deltas":[{"op":"move_ff","cell":1000000,"x":1,"y":1}]}`)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-circuit delta: status %d body %s, want 422", rr.Code, rr.Body)
	}
}

// TestECOMetricsSnapshot: the ECO counters surface in /metrics.
func TestECOMetricsSnapshot(t *testing.T) {
	s := New(testConfig())
	defer drainNow(t, s)
	ff, x, y := ecoProbe(t, 60, 8, 5)
	body := fmt.Sprintf(
		`{"circuit":{"cells":60,"flipflops":8,"seed":5},"rings":4,"iters":2,"deltas":[{"op":"move_ff","cell":%d,"x":%.4f,"y":%.4f}]}`,
		ff, x, y)
	if rr := postECO(s, body); rr.Code != http.StatusOK {
		t.Fatalf("ECO request: status %d body %s", rr.Code, rr.Body)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap StatsSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics: %v (%s)", err, rr.Body)
	}
	if snap.ECOBaseBuilds != 1 || snap.ECOBaseHits != 0 {
		t.Errorf("eco base builds/hits = %d/%d, want 1/0", snap.ECOBaseBuilds, snap.ECOBaseHits)
	}
	if snap.Admitted != 1 || snap.Completed != 1 {
		t.Errorf("admitted/completed = %d/%d, want 1/1", snap.Admitted, snap.Completed)
	}
}
