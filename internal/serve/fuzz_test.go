package serve

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzParseJobRequest hammers the admission decoder with arbitrary bytes and
// asserts its contract: it never panics, and any request it accepts is fully
// inside the admission bounds — safe to hand to the generator and the flow
// unchecked — and survives a marshal/reparse round trip (no partially
// validated state leaks out).
func FuzzParseJobRequest(f *testing.F) {
	seeds := []string{
		`{"circuit":{"cells":1500,"flipflops":150,"seed":7}}`,
		`{"circuit":{"cells":60,"flipflops":8,"seed":1},"rings":4,"iters":2,"telemetry":true}`,
		`{"circuit":{"cells":400,"flipflops":40,"seed":2},"assigner":"ilp","objective":"sum","deadline_ms":100,"strict":true}`,
		`{"circuit":{"cells":0}}`,
		`{"circuit":{"cells":60,"flipflops":61}}`,
		`{"circuit":{"cells":60},"assigner":"magic"}`,
		`{"circuit":{"cells":60},"unknown_knob":1}`,
		`{"circuit":{"cells":60}}{"again":true}`,
		`{"circuit":{"cells":1e9}}`,
		`{"circuit":{"cells":60,"seed":-9223372036854775808},"deadline_ms":-1}`,
		`[]`,
		`null`,
		`"job"`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{MaxCells: 50000, MaxDeadline: 5 * time.Minute}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseJobRequest(data, lim)
		if err != nil {
			if req != nil {
				t.Fatal("error with a non-nil request")
			}
			return
		}
		if req.Circuit.Cells < 1 || req.Circuit.Cells > lim.MaxCells {
			t.Fatalf("accepted cells %d outside [1, %d]", req.Circuit.Cells, lim.MaxCells)
		}
		if req.Circuit.FlipFlops < 0 || req.Circuit.FlipFlops > req.Circuit.Cells {
			t.Fatalf("accepted flipflops %d with %d cells", req.Circuit.FlipFlops, req.Circuit.Cells)
		}
		if req.rings() < 1 || req.rings() > 1024 {
			t.Fatalf("effective rings %d outside [1, 1024]", req.rings())
		}
		if req.Iters < 0 || req.Iters > 100 {
			t.Fatalf("accepted iters %d", req.Iters)
		}
		if d := req.deadline(30 * time.Second); d <= 0 || d > lim.MaxDeadline {
			t.Fatalf("effective deadline %v outside (0, %v]", d, lim.MaxDeadline)
		}
		switch req.Assigner {
		case "", "flow", "ilp":
		default:
			t.Fatalf("accepted assigner %q", req.Assigner)
		}
		switch req.Objective {
		case "", "delta", "sum":
		default:
			t.Fatalf("accepted objective %q", req.Objective)
		}
		if req.templateKey() == "" {
			t.Fatal("empty template key")
		}
		// Round trip: an accepted request re-encodes to a request the
		// decoder accepts identically.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshaling accepted request: %v", err)
		}
		again, err := ParseJobRequest(enc, lim)
		if err != nil {
			t.Fatalf("reparsing %s: %v", enc, err)
		}
		if *again != *req {
			t.Fatalf("round trip changed the request: %+v vs %+v", again, req)
		}
	})
}
