package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/core"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/obs"
	"rotaryclk/internal/placer"
)

// maxRequestBytes bounds the request body; a job spec is a few hundred
// bytes, so anything near the cap is garbage.
const maxRequestBytes = 1 << 20

// CircuitSpec names a deterministic synthetic circuit: the full generator
// input. Equal specs generate identical circuits (netlist.Generate is
// seed-deterministic), which is what lets the server share one placement
// system and tapping cache across every job carrying the same spec.
type CircuitSpec struct {
	Cells     int   `json:"cells"`
	FlipFlops int   `json:"flipflops"`
	Seed      int64 `json:"seed"`
}

// JobRequest is the wire format of one placement job.
type JobRequest struct {
	Circuit   CircuitSpec `json:"circuit"`
	Rings     int         `json:"rings,omitempty"`     // default 16
	Assigner  string      `json:"assigner,omitempty"`  // "flow" (default) | "ilp"
	Objective string      `json:"objective,omitempty"` // "delta" (default) | "sum"
	Iters     int         `json:"iters,omitempty"`     // stage 3-6 iterations, default 5

	// DeadlineMS is the job's total time budget, queue wait included. 0
	// uses the server default; values above the server max are rejected.
	DeadlineMS int `json:"deadline_ms,omitempty"`

	// Strict disables the flow's recovery ladders and the degraded-result
	// path: a deadline then fails the job instead of degrading it.
	Strict bool `json:"strict,omitempty"`

	// Telemetry asks for the job's deterministic counters and span trace
	// in the response.
	Telemetry bool `json:"telemetry,omitempty"`
}

// Limits are the admission bounds ParseJobRequest enforces. The zero value
// means the package defaults (50000 cells, 5m).
type Limits struct {
	MaxCells    int
	MaxDeadline time.Duration
}

// ParseJobRequest decodes and validates one job request. Unknown fields are
// rejected — a typoed knob silently ignored is worse than a 400 — and every
// numeric field is range-checked against the limits, so a decoded request
// is safe to hand to the generator and the flow unchecked.
func ParseJobRequest(data []byte, lim Limits) (*JobRequest, error) {
	if lim.MaxCells <= 0 {
		lim.MaxCells = 50000
	}
	if lim.MaxDeadline <= 0 {
		lim.MaxDeadline = 5 * time.Minute
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding job request: %w", err)
	}
	// A second document after the first is a malformed request, not data
	// to ignore.
	if dec.More() {
		return nil, fmt.Errorf("decoding job request: trailing data after JSON object")
	}
	if req.Circuit.Cells < 1 || req.Circuit.Cells > lim.MaxCells {
		return nil, fmt.Errorf("circuit.cells %d out of range [1, %d]", req.Circuit.Cells, lim.MaxCells)
	}
	if req.Circuit.FlipFlops < 0 || req.Circuit.FlipFlops > req.Circuit.Cells {
		return nil, fmt.Errorf("circuit.flipflops %d out of range [0, %d]", req.Circuit.FlipFlops, req.Circuit.Cells)
	}
	if req.Rings < 0 || req.Rings > 1024 {
		return nil, fmt.Errorf("rings %d out of range [0, 1024]", req.Rings)
	}
	switch req.Assigner {
	case "", "flow", "ilp":
	default:
		return nil, fmt.Errorf("unknown assigner %q (want flow or ilp)", req.Assigner)
	}
	switch req.Objective {
	case "", "delta", "sum":
	default:
		return nil, fmt.Errorf("unknown objective %q (want delta or sum)", req.Objective)
	}
	if req.Iters < 0 || req.Iters > 100 {
		return nil, fmt.Errorf("iters %d out of range [0, 100]", req.Iters)
	}
	if req.DeadlineMS < 0 || time.Duration(req.DeadlineMS)*time.Millisecond > lim.MaxDeadline {
		return nil, fmt.Errorf("deadline_ms %d out of range [0, %d]", req.DeadlineMS, lim.MaxDeadline.Milliseconds())
	}
	return &req, nil
}

// deadline resolves the job's effective time budget.
func (r *JobRequest) deadline(def time.Duration) time.Duration {
	if r.DeadlineMS > 0 {
		return time.Duration(r.DeadlineMS) * time.Millisecond
	}
	return def
}

// templateKey identifies the immutable state jobs with this request can
// share: the circuit spec plus everything that shapes the ring array.
func (r *JobRequest) templateKey() string {
	return fmt.Sprintf("c%d-f%d-s%d-r%d", r.Circuit.Cells, r.Circuit.FlipFlops, r.Circuit.Seed, r.rings())
}

func (r *JobRequest) rings() int {
	if r.Rings > 0 {
		return r.Rings
	}
	return 16
}

func (r *JobRequest) spec() netlist.GenSpec {
	return netlist.GenSpec{
		Name:      fmt.Sprintf("job-c%d-f%d-s%d", r.Circuit.Cells, r.Circuit.FlipFlops, r.Circuit.Seed),
		Cells:     r.Circuit.Cells,
		FlipFlops: r.Circuit.FlipFlops,
		Seed:      r.Circuit.Seed,
	}
}

// JobEvent is one recovery/degradation action in the response.
type JobEvent struct {
	Stage  int    `json:"stage"`
	Iter   int    `json:"iter,omitempty"`
	Kind   string `json:"kind"`
	Action string `json:"action"`
	Err    string `json:"err,omitempty"`
}

// JobResponse is the wire format of a completed job.
type JobResponse struct {
	Circuit    string     `json:"circuit"`
	Degraded   bool       `json:"degraded"`
	Events     []JobEvent `json:"events,omitempty"`
	Iterations int        `json:"iterations"`
	MaxSlackPS float64    `json:"max_slack_ps"`

	Base  core.Metrics `json:"base"`
	Final core.Metrics `json:"final"`

	ElapsedMS   float64 `json:"elapsed_ms"`
	TemplateHit bool    `json:"template_hit"`

	// Telemetry payload, present when the request asked for it: the job's
	// deterministic counters (bit-identical for identical jobs) and its
	// span trace (wall-clock, scheduling-dependent).
	Counters json.RawMessage `json:"counters,omitempty"`
	Trace    string          `json:"trace,omitempty"`
}

// execute runs one admitted job start to finish: generate the circuit, pick
// up (or build) the shared template, run the flow under the job's token and
// registry, and translate the outcome into an HTTP response. A panic
// anywhere in the solver stack is confined to this job.
func (s *Server) execute(j *job) {
	// Latency counts from admission, like the deadline does: queue wait is
	// time the caller spent waiting, so p99 must include it.
	start := j.admitted
	defer func() {
		s.mu.Lock()
		delete(s.active, j)
		s.mu.Unlock()
		j.release()
		close(j.done)
	}()

	c, err := netlist.Generate(j.req.spec())
	if err != nil {
		j.status, j.errMsg = 400, fmt.Sprintf("generating circuit: %v", err)
		s.stats.add(&s.stats.failed, 1)
		return
	}
	tmpl, hit, err := s.templates.get(j.req.templateKey(), func() (*template, error) {
		return buildTemplate(j.req)
	})
	if err != nil {
		j.status, j.errMsg = 500, fmt.Sprintf("building placement template: %v", err)
		s.stats.add(&s.stats.failed, 1)
		return
	}
	if hit {
		s.stats.add(&s.stats.templateHits, 1)
	} else {
		s.stats.add(&s.stats.templateBuilds, 1)
	}

	reg := obs.NewRegistry()
	cfg := core.Config{
		NumRings:    j.req.rings(),
		MaxIters:    j.req.Iters,
		Strict:      j.req.Strict,
		Parallelism: s.perJobWorkers(),
		Obs:         reg,
		Stop:        j.tok,
		System:      tmpl.sys,
		TapCache:    tmpl.tap,
	}
	if j.req.Assigner == "ilp" {
		cfg.Assigner = core.ILP
	}
	if j.req.Objective == "sum" {
		cfg.Objective = core.WeightedSum
	}

	res, runErr, panicked := s.runProtected(c, cfg)
	elapsed := time.Since(start)
	if panicked {
		s.stats.add(&s.stats.panics, 1)
		j.status, j.errMsg = 500, fmt.Sprintf("job panicked: %v", runErr)
		return
	}
	if runErr != nil {
		// Only strict jobs and genuinely broken instances land here; a
		// deadline in non-strict mode comes back as a degraded result.
		s.stats.add(&s.stats.failed, 1)
		j.status, j.errMsg = 422, runErr.Error()
		return
	}

	resp := &JobResponse{
		Circuit:     c.Name,
		Degraded:    res.Degraded,
		Iterations:  res.Iterations,
		MaxSlackPS:  sanitize(res.MaxSlack),
		Base:        sanitizeMetrics(res.Base),
		Final:       sanitizeMetrics(res.Final),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		TemplateHit: hit,
	}
	deadlined := false
	for _, ev := range res.Events {
		e := JobEvent{Stage: ev.Stage, Iter: ev.Iter, Kind: ev.Kind.String(), Action: ev.Action}
		if ev.Err != nil {
			e.Err = ev.Err.Error()
		}
		resp.Events = append(resp.Events, e)
		switch ev.Kind {
		case core.DeadlineExceeded:
			deadlined = true
		case core.Canceled:
			deadlined = true
		}
	}
	if j.req.Telemetry {
		snap := reg.Snapshot()
		resp.Counters = json.RawMessage(snap.CountersJSON())
		resp.Trace = snap.Text()
	}
	j.status, j.resp = 200, resp

	s.stats.add(&s.stats.completed, 1)
	if res.Degraded {
		s.stats.add(&s.stats.degraded, 1)
	}
	if deadlined {
		s.stats.add(&s.stats.deadlined, 1)
	}
	s.stats.observe(elapsed)
}

// runProtected calls the flow with a per-job panic guard.
func (s *Server) runProtected(c *netlist.Circuit, cfg core.Config) (res *core.Result, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res, err, panicked = nil, fmt.Errorf("%v", r), true
		}
	}()
	res, err = s.runFlow(c, cfg)
	return res, err, false
}

// perJobWorkers carves the shared kernel-worker budget across the pool.
func (s *Server) perJobWorkers() int {
	w := s.cfg.Parallelism / s.cfg.Workers
	if w < 1 {
		w = 1
	}
	return w
}

// buildTemplate assembles the shareable immutable state for a circuit spec:
// a placement system built over a template-owned circuit (jobs fork it, the
// template itself is never solved on) and a tapping-solve cache. The
// template registry is nil on purpose — builds are a shared cost no single
// job should account for.
func buildTemplate(req *JobRequest) (*template, error) {
	tc, err := netlist.Generate(req.spec())
	if err != nil {
		return nil, err
	}
	sys, err := placer.NewSystem(tc, nil)
	if err != nil {
		return nil, err
	}
	return &template{sys: sys, tap: assign.NewTapCache()}, nil
}

// sanitize replaces non-finite floats with 0 so the response always
// marshals (encoding/json rejects NaN and Inf).
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func sanitizeMetrics(m core.Metrics) core.Metrics {
	m.AFD = sanitize(m.AFD)
	m.TapWL = sanitize(m.TapWL)
	m.SignalWL = sanitize(m.SignalWL)
	m.TotalWL = sanitize(m.TotalWL)
	m.MaxCap = sanitize(m.MaxCap)
	m.ClockPower = sanitize(m.ClockPower)
	m.SignalPower = sanitize(m.SignalPower)
	m.TotalPower = sanitize(m.TotalPower)
	m.LeakPower = sanitize(m.LeakPower)
	m.WCP = sanitize(m.WCP)
	return m
}
