package serve

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"rotaryclk/internal/core"
)

// TestParseJobRequestRejects walks every admission branch: a decoded request
// is handed to the generator and the flow unchecked, so each range check must
// actually fire.
func TestParseJobRequestRejects(t *testing.T) {
	lim := Limits{MaxCells: 1000, MaxDeadline: 10 * time.Second}
	tests := []struct {
		name string
		body string
		want string
	}{
		{"not json", `{`, "decoding job request"},
		{"unknown field", `{"circuit":{"cells":10},"frobnicate":1}`, "decoding job request"},
		{"trailing document", `{"circuit":{"cells":10}} {"circuit":{"cells":10}}`, "trailing data"},
		{"zero cells", `{"circuit":{"cells":0}}`, "circuit.cells"},
		{"cells over max", `{"circuit":{"cells":1001}}`, "circuit.cells"},
		{"negative flipflops", `{"circuit":{"cells":10,"flipflops":-1}}`, "circuit.flipflops"},
		{"flipflops over cells", `{"circuit":{"cells":10,"flipflops":11}}`, "circuit.flipflops"},
		{"negative rings", `{"circuit":{"cells":10},"rings":-1}`, "rings"},
		{"rings over cap", `{"circuit":{"cells":10},"rings":1025}`, "rings"},
		{"unknown assigner", `{"circuit":{"cells":10},"assigner":"magic"}`, "unknown assigner"},
		{"unknown objective", `{"circuit":{"cells":10},"objective":"vibes"}`, "unknown objective"},
		{"negative iters", `{"circuit":{"cells":10},"iters":-1}`, "iters"},
		{"iters over cap", `{"circuit":{"cells":10},"iters":101}`, "iters"},
		{"negative deadline", `{"circuit":{"cells":10},"deadline_ms":-1}`, "deadline_ms"},
		{"deadline over max", `{"circuit":{"cells":10},"deadline_ms":10001}`, "deadline_ms"},
	}
	for _, tc := range tests {
		req, err := ParseJobRequest([]byte(tc.body), lim)
		if err == nil {
			t.Errorf("%s: accepted %q as %+v", tc.name, tc.body, req)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestParseJobRequestDefaults: the zero Limits value means package defaults,
// and a minimal valid request decodes with its knobs resolved lazily.
func TestParseJobRequestDefaults(t *testing.T) {
	req, err := ParseJobRequest([]byte(`{"circuit":{"cells":50000,"seed":3}}`), Limits{})
	if err != nil {
		t.Fatalf("max-cells request rejected under default limits: %v", err)
	}
	if got := req.rings(); got != 16 {
		t.Errorf("default rings = %d, want 16", got)
	}
	if got := req.deadline(30 * time.Second); got != 30*time.Second {
		t.Errorf("unset deadline = %v, want server default", got)
	}
	req.DeadlineMS = 1500
	if got := req.deadline(30 * time.Second); got != 1500*time.Millisecond {
		t.Errorf("explicit deadline = %v, want 1.5s", got)
	}
	if _, err := ParseJobRequest([]byte(`{"circuit":{"cells":50001}}`), Limits{}); err == nil {
		t.Error("50001 cells accepted under the 50000 default limit")
	}
	if _, err := ParseJobRequest([]byte(`{"circuit":{"cells":10},"deadline_ms":300001}`), Limits{}); err == nil {
		t.Error("deadline past the 5m default limit accepted")
	}
}

// TestParseECORequestRejects covers the ECO admission branches, including the
// per-delta shallow validation that keeps absurd ops and indices away from
// the worker.
func TestParseECORequestRejects(t *testing.T) {
	lim := Limits{MaxCells: 1000, MaxDeadline: 10 * time.Second}
	okDeltas := `[{"op":"move_ff","cell":1,"x":1,"y":1}]`
	tests := []struct {
		name string
		body string
		want string
	}{
		{"not json", `nope`, "decoding eco request"},
		{"unknown field", `{"circuit":{"cells":10},"deltas":` + okDeltas + `,"zap":1}`, "decoding eco request"},
		{"trailing document", `{"circuit":{"cells":10},"deltas":` + okDeltas + `} null`, "trailing data"},
		{"zero cells", `{"circuit":{"cells":0},"deltas":` + okDeltas + `}`, "circuit.cells"},
		{"flipflops over cells", `{"circuit":{"cells":10,"flipflops":11},"deltas":` + okDeltas + `}`, "circuit.flipflops"},
		{"rings over cap", `{"circuit":{"cells":10},"rings":1025,"deltas":` + okDeltas + `}`, "rings"},
		{"iters over cap", `{"circuit":{"cells":10},"iters":101,"deltas":` + okDeltas + `}`, "iters"},
		{"deadline over max", `{"circuit":{"cells":10},"deadline_ms":10001,"deltas":` + okDeltas + `}`, "deadline_ms"},
		{"no deltas", `{"circuit":{"cells":10},"deltas":[]}`, "empty"},
		{"unknown op", `{"circuit":{"cells":10},"deltas":[{"op":"teleport_ff","cell":1}]}`, "unknown op"},
		{"negative cell", `{"circuit":{"cells":10},"deltas":[{"op":"move_ff","cell":-1}]}`, "cell -1"},
		{"negative net", `{"circuit":{"cells":10},"deltas":[{"op":"edit_net","net":-2}]}`, "net -2"},
		{"ring over cap", `{"circuit":{"cells":10},"deltas":[{"op":"retarget_ring","cell":1,"ring":1025}]}`, "ring 1025"},
		{"nan coordinate", `{"circuit":{"cells":10},"deltas":[{"op":"move_ff","cell":1,"x":1e999}]}`, "decoding eco request"},
	}
	for _, tc := range tests {
		req, err := ParseECORequest([]byte(tc.body), lim)
		if err == nil {
			t.Errorf("%s: accepted %q as %+v", tc.name, tc.body, req)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Oversized batch, built programmatically (65 deltas is past the cap).
	var sb strings.Builder
	sb.WriteString(`{"circuit":{"cells":10},"deltas":[`)
	for i := 0; i <= maxECODeltas; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"op":"move_ff","cell":%d,"x":1,"y":1}`, i)
	}
	sb.WriteString(`]}`)
	if _, err := ParseECORequest([]byte(sb.String()), lim); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized delta batch: got err %v, want per-request cap rejection", err)
	}

	// Zero limits fall back to the package defaults, and the non-finite
	// coordinate check fires on values JSON can actually carry (JSON has no
	// NaN literal, so the guard matters for hand-built requests too — here a
	// huge exponent decodes fine but the request still must round-trip).
	req, err := ParseECORequest([]byte(`{"circuit":{"cells":10},"deltas":`+okDeltas+`}`), Limits{})
	if err != nil {
		t.Fatalf("minimal eco request rejected under default limits: %v", err)
	}
	if req.rings() != 16 {
		t.Errorf("default eco rings = %d, want 16", req.rings())
	}
	if got := req.deadline(7 * time.Second); got != 7*time.Second {
		t.Errorf("unset eco deadline = %v, want server default", got)
	}
}

// TestSanitizeNonFinite: responses must always marshal, so every non-finite
// metric collapses to 0 and finite values pass through untouched.
func TestSanitizeNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := sanitize(v); got != 0 {
			t.Errorf("sanitize(%v) = %v, want 0", v, got)
		}
	}
	if got := sanitize(-3.25); got != -3.25 {
		t.Errorf("sanitize(-3.25) = %v, want passthrough", got)
	}
	m := core.Metrics{TapWL: math.NaN(), MaxCap: math.Inf(1), WCP: math.Inf(-1), TotalWL: 42}
	s := sanitizeMetrics(m)
	if s.TapWL != 0 || s.MaxCap != 0 || s.WCP != 0 {
		t.Errorf("sanitizeMetrics left non-finite fields: %+v", s)
	}
	if s.TotalWL != 42 {
		t.Errorf("sanitizeMetrics clobbered finite TotalWL: %v", s.TotalWL)
	}
}
