// Package serve implements placement-as-a-service: an HTTP/JSON front end
// over core.Run with the robustness plumbing a long-lived daemon needs and a
// one-shot CLI does not.
//
//   - Admission control: a bounded job queue ahead of a fixed worker pool.
//     A full queue sheds load immediately (HTTP 429 + Retry-After) instead
//     of letting latency grow without bound; a draining server rejects new
//     work with 503.
//   - Deadlines: every job runs under a stop.Token armed at admission, so
//     time spent queued counts against the deadline. A fired deadline
//     surfaces as a Degraded result with a DeadlineExceeded event (HTTP
//     200), not an error — the caller gets the best placement the budget
//     bought.
//   - Isolation: each job gets its own obs.Registry (no cross-job counter
//     talk), its own forked placer.System, and a panic guard that converts
//     a crashing job into a 500 response without taking the daemon down.
//   - Amortization: the expensive immutable state — the quadratic placement
//     system's CSR connectivity and the tapping-solve cache — is built once
//     per circuit spec behind a singleflight guard and shared by every job
//     with that spec (see template.go).
//
// The server is an http.Handler; cmd/rotaryd wires it to a listener and the
// process lifecycle (SIGTERM -> Drain -> exit 0).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rotaryclk/internal/core"
	"rotaryclk/internal/eco"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/stop"
)

// Config parameterizes the server. The zero value is usable: every field
// has a serving-appropriate default.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-yet-running jobs.
	// Beyond it the server sheds (429). Default 16.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Default 2.
	Workers int
	// Parallelism is the total kernel-worker budget shared by all jobs:
	// each job runs its solvers at max(1, Parallelism/Workers) workers, so
	// a fully loaded server oversubscribes cores by at most one worker per
	// job. Default runtime.GOMAXPROCS(0).
	Parallelism int
	// DefaultDeadline applies to jobs that do not set deadline_ms.
	// Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-job deadline a request may ask for.
	// Default 5m.
	MaxDeadline time.Duration
	// MaxCells bounds the synthetic-circuit size a request may ask for;
	// admission rejects bigger specs with 400. Default 50000.
	MaxCells int
}

func (c *Config) normalize() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 50000
	}
}

// limits returns the admission bounds ParseJobRequest validates against.
func (c *Config) limits() Limits {
	return Limits{MaxCells: c.MaxCells, MaxDeadline: c.MaxDeadline}
}

// job is one admitted request flowing from the handler goroutine through the
// queue to a worker and back — a placement job (req) or an ECO request
// (ecoReq); exactly one is set. The handler blocks on done; the worker owns
// every other field until it closes done.
type job struct {
	req      *JobRequest
	ecoReq   *ECORequest
	tok      *stop.Token
	release  func()
	admitted time.Time

	// Filled by the worker before close(done): resp is a *JobResponse or an
	// *ECOResponse on success, nil with status/errMsg on failure.
	status int
	resp   any
	errMsg string

	done chan struct{}
}

// Server is the placement service. Create with New, serve it as an
// http.Handler, stop it with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// mu guards draining, the queue send (so Drain can close the channel
	// without racing an enqueue), and the active set.
	mu       sync.Mutex
	draining bool
	queue    chan *job
	active   map[*job]struct{} // admitted and not yet finished

	workers sync.WaitGroup

	templates templateCache
	ecoBases  ecoBaseCache
	stats     stats

	// runFlow and runECO are the solver entry points; tests replace them to
	// inject panics and stalls without touching the solver stack.
	runFlow func(*netlist.Circuit, core.Config) (*core.Result, error)
	runECO  func(*eco.State, []eco.Delta, core.Config, eco.Options) (*core.ECOResult, error)
}

// New builds a server and starts its worker pool. The caller must Drain it
// to stop the workers.
func New(cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		queue:   make(chan *job, cfg.QueueDepth),
		active:  make(map[*job]struct{}),
		runFlow: core.Run,
		runECO:  core.ApplyECO,
	}
	s.templates.init()
	s.ecoBases.init()
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/eco", s.handleECO)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP makes the server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// worker executes queued jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if j.ecoReq != nil {
			s.executeECO(j)
		} else {
			s.execute(j)
		}
	}
}

// Drain stops the server gracefully: new work is rejected immediately,
// queued and in-flight jobs run to completion, and every waiting handler
// gets its response. If ctx expires first, the remaining jobs' stop tokens
// are fired — cooperative cancellation turns each into a prompt degraded
// result — and Drain still waits for them to finish, so no admitted job is
// ever abandoned. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline-out everything still running or queued, then wait for the
	// (now prompt) completions.
	s.mu.Lock()
	forced := 0
	for j := range s.active {
		j.tok.Cancel()
		forced++
	}
	s.mu.Unlock()
	s.stats.add(&s.stats.drainForced, int64(forced))
	<-done
	return nil
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleJobs admits, runs, and answers one placement job synchronously.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	req, err := ParseJobRequest(body, s.cfg.limits())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	deadline := req.deadline(s.cfg.DefaultDeadline)
	tok, release := stop.WithTimeout(deadline)
	j := &job{req: req, tok: tok, release: release, admitted: time.Now(), done: make(chan struct{})}
	if !s.admit(w, j) {
		return
	}
	s.awaitAndReply(w, j)
}

// admit enqueues one job under the admission rules — draining rejects with
// 503, a full queue sheds with 429 — and reports whether it was accepted.
// On rejection the response has been written and the job's token released.
func (s *Server) admit(w http.ResponseWriter, j *job) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		j.release()
		s.stats.add(&s.stats.rejectedDraining, 1)
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	select {
	case s.queue <- j:
		s.active[j] = struct{}{}
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.release()
		s.stats.add(&s.stats.shed, 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return false
	}
	s.stats.add(&s.stats.admitted, 1)
	return true
}

// awaitAndReply blocks until the worker finishes the job and writes its
// response.
func (s *Server) awaitAndReply(w http.ResponseWriter, j *job) {
	<-j.done
	if j.resp == nil {
		httpError(w, j.status, j.errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(j.status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(j.resp) //nolint:errcheck // client gone is not our failure
}

// handleMetrics serves the operational snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth := len(s.queue)
	inFlight := len(s.active) - depth
	draining := s.draining
	s.mu.Unlock()
	if inFlight < 0 {
		inFlight = 0
	}
	snap := s.stats.snapshot()
	snap.QueueDepth = depth
	snap.QueueCap = s.cfg.QueueDepth
	snap.InFlight = inFlight
	snap.Draining = draining
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// httpError writes a small JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%s}\n", strconv.Quote(msg))
}
