package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rotaryclk/internal/core"
	"rotaryclk/internal/netlist"
)

// testConfig keeps the lifecycle tests fast and deterministic: one worker,
// a tiny queue, serial solvers.
func testConfig() Config {
	return Config{QueueDepth: 4, Workers: 1, Parallelism: 1}
}

// smallJob is a circuit spec small enough that template builds are instant.
const smallJob = `{"circuit":{"cells":60,"flipflops":8,"seed":1}}`

// post runs one request through the server synchronously.
func post(s *Server, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	return rr
}

// postAsync runs one request in the background and delivers the recorder
// when the handler returns.
func postAsync(s *Server, body string) <-chan *httptest.ResponseRecorder {
	ch := make(chan *httptest.ResponseRecorder, 1)
	go func() { ch <- post(s, body) }()
	return ch
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func drainNow(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestGracefulDrain: Drain lets the in-flight job finish and answer its
// caller while new work is rejected with 503; no admitted job is lost.
func TestGracefulDrain(t *testing.T) {
	s := New(testConfig())
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		started <- struct{}{}
		<-unblock
		return &core.Result{}, nil
	}

	inflight := postAsync(s, smallJob)
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", s.Draining)

	rr := post(s, smallJob)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("job during drain: status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	close(unblock)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rr := <-inflight; rr.Code != http.StatusOK {
		t.Fatalf("in-flight job after drain: status %d body %s", rr.Code, rr.Body)
	}
	if got := s.stats.rejectedDraining.Load(); got != 1 {
		t.Errorf("rejectedDraining = %d, want 1", got)
	}
}

// TestDrainForcedCancel: when the drain context expires, the remaining jobs'
// tokens are fired and Drain still waits for every one to answer — forced
// drain means prompt degraded responses, not abandoned requests.
func TestDrainForcedCancel(t *testing.T) {
	s := New(testConfig())
	started := make(chan struct{}, 1)
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		started <- struct{}{}
		// A cooperative solver: spins until its token fires, then hands back
		// a degraded best-so-far result.
		for !cfg.Stop.Stopped() {
			time.Sleep(time.Millisecond)
		}
		return &core.Result{Degraded: true}, nil
	}

	inflight := postAsync(s, smallJob)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rr := <-inflight
	if rr.Code != http.StatusOK {
		t.Fatalf("forced-drain job: status %d body %s", rr.Code, rr.Body)
	}
	var resp JobResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("forced-drain job not degraded")
	}
	if got := s.stats.drainForced.Load(); got != 1 {
		t.Errorf("drainForced = %d, want 1", got)
	}
}

// TestQueueFullShed: with the worker busy and the queue full, the next job
// is shed immediately with 429 + Retry-After instead of queuing unboundedly;
// every admitted job still completes.
func TestQueueFullShed(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	s := New(cfg)
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		started <- struct{}{}
		<-unblock
		return &core.Result{}, nil
	}

	running := postAsync(s, smallJob) // occupies the single worker
	<-started
	queued := postAsync(s, smallJob) // fills the depth-1 queue
	waitFor(t, "queued job", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.queue) == 1
	})

	rr := post(s, smallJob) // nowhere to go: shed
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow job: status %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(unblock)
	for _, ch := range []<-chan *httptest.ResponseRecorder{running, queued} {
		if rr := <-ch; rr.Code != http.StatusOK {
			t.Fatalf("admitted job: status %d body %s", rr.Code, rr.Body)
		}
	}
	drainNow(t, s)
	if got := s.stats.shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
}

// TestPanicIsolation: a job that panics inside the solver stack answers 500
// and the daemon keeps serving — the next job on the same worker succeeds.
func TestPanicIsolation(t *testing.T) {
	s := New(testConfig())
	first := true
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		if first {
			first = false
			panic("solver invariant broken")
		}
		return &core.Result{}, nil
	}

	rr := post(s, smallJob)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d, want 500", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "job panicked") {
		t.Errorf("panic body: %s", rr.Body)
	}
	rr = post(s, smallJob)
	if rr.Code != http.StatusOK {
		t.Fatalf("job after panic: status %d body %s", rr.Code, rr.Body)
	}
	drainNow(t, s)
	if got := s.stats.panics.Load(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

// TestStrictFailureIs422: a strict job whose flow errors maps to 422, not a
// daemon failure.
func TestStrictFailureIs422(t *testing.T) {
	s := New(testConfig())
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		return nil, fmt.Errorf("infeasible instance")
	}
	rr := post(s, smallJob)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", rr.Code)
	}
	drainNow(t, s)
}

// TestBadRequests: malformed admission inputs answer 400 without touching
// the worker pool.
func TestBadRequests(t *testing.T) {
	s := New(testConfig())
	defer drainNow(t, s)
	cases := []string{
		``,
		`{`,
		`{"circuit":{"cells":0}}`,
		`{"circuit":{"cells":60,"flipflops":61}}`,
		`{"circuit":{"cells":60},"assigner":"magic"}`,
		`{"circuit":{"cells":60},"typo_field":1}`,
		`{"circuit":{"cells":60}}{"circuit":{"cells":60}}`,
	}
	for _, body := range cases {
		if rr := post(s, body); rr.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: status %d, want 405", rr.Code)
	}
}

// TestRealDeadlineDegrades drives the real flow through the HTTP path with a
// deadline far below the circuit's runtime: the job must answer 200 with a
// degraded result and a deadline event, within a small multiple of the
// deadline.
func TestRealDeadlineDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real placement")
	}
	cfg := testConfig()
	cfg.Parallelism = 0 // let the solver use the machine; the deadline still binds
	s := New(cfg)
	defer drainNow(t, s)

	body := `{"circuit":{"cells":12000,"flipflops":1200,"seed":3},"deadline_ms":60}`
	start := time.Now()
	rr := post(s, body)
	elapsed := time.Since(start)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rr.Code, rr.Body)
	}
	var resp JobResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Skip("circuit finished inside the deadline on this machine")
	}
	found := false
	for _, ev := range resp.Events {
		if ev.Kind == core.DeadlineExceeded.String() || ev.Kind == core.Canceled.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded response without a deadline event: %+v", resp.Events)
	}
	if elapsed > 5*time.Second {
		t.Errorf("60ms-deadline job took %v", elapsed)
	}
}

// TestConcurrentDeterminism: two identical jobs racing on the same template
// and tapping cache must report bit-identical deterministic counters — the
// per-job registry isolation and the cache's counter discipline guarantee
// it regardless of scheduling.
func TestConcurrentDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 2
	s := New(cfg)
	defer drainNow(t, s)

	body := `{"circuit":{"cells":240,"flipflops":24,"seed":5},"rings":4,"iters":2,"telemetry":true}`
	var wg sync.WaitGroup
	resps := make([]*httptest.ResponseRecorder, 2)
	for i := range resps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = post(s, body)
		}(i)
	}
	wg.Wait()

	var counters [2]json.RawMessage
	for i, rr := range resps {
		if rr.Code != http.StatusOK {
			t.Fatalf("job %d: status %d body %s", i, rr.Code, rr.Body)
		}
		var resp JobResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Counters) == 0 {
			t.Fatalf("job %d: telemetry requested but no counters", i)
		}
		counters[i] = resp.Counters
	}
	if !bytes.Equal(counters[0], counters[1]) {
		t.Errorf("concurrent identical jobs diverged:\n%s\nvs\n%s", counters[0], counters[1])
	}
	// Exactly one of the two built the template; the other hit it.
	if b := s.stats.templateBuilds.Load(); b != 1 {
		t.Errorf("templateBuilds = %d, want 1", b)
	}
	if h := s.stats.templateHits.Load(); h != 1 {
		t.Errorf("templateHits = %d, want 1", h)
	}
}

// TestTemplateSingleflight: concurrent gets for one key run the builder
// exactly once, and a failed build is evicted instead of poisoning the key.
func TestTemplateSingleflight(t *testing.T) {
	var c templateCache
	c.init()
	var builds atomic32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.get("k", func() (*template, error) {
				builds.add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return &template{}, nil
			})
		}()
	}
	wg.Wait()
	if got := builds.load(); got != 1 {
		t.Errorf("builder ran %d times, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("cache len %d, want 1", c.Len())
	}

	if _, _, err := c.get("bad", func() (*template, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failed build reported no error")
	}
	if c.Len() != 1 {
		t.Errorf("failed build not evicted: len %d", c.Len())
	}
	if _, _, err := c.get("bad", func() (*template, error) {
		return &template{}, nil
	}); err != nil {
		t.Errorf("retry after failed build: %v", err)
	}
}

// TestMetricsEndpoint: /metrics and /healthz answer well-formed JSON and
// track the lifecycle.
func TestMetricsEndpoint(t *testing.T) {
	s := New(testConfig())
	s.runFlow = func(c *netlist.Circuit, cfg core.Config) (*core.Result, error) {
		return &core.Result{}, nil
	}
	if rr := post(s, smallJob); rr.Code != http.StatusOK {
		t.Fatalf("job: status %d", rr.Code)
	}

	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap StatsSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics: %v (%s)", err, rr.Body)
	}
	if snap.Admitted != 1 || snap.Completed != 1 {
		t.Errorf("admitted/completed = %d/%d, want 1/1", snap.Admitted, snap.Completed)
	}
	if snap.Latency.Count != 1 {
		t.Errorf("latency count = %d, want 1", snap.Latency.Count)
	}

	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rr.Body.String(), `"ok"`) {
		t.Errorf("healthz before drain: %s", rr.Body)
	}
	drainNow(t, s)
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rr.Body.String(), `"draining"`) {
		t.Errorf("healthz after drain: %s", rr.Body)
	}
}

// atomic32 is a tiny synchronized counter for test assertions.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
