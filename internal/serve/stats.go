package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the sliding window of completed-job latencies the quantiles
// are computed over. Big enough that p99 is meaningful, small enough that
// /metrics stays cheap.
const latWindow = 4096

// stats is the server's operational counter set plus a latency ring. The
// counters are atomics (hot path: one Add per event); the latency ring is
// mutex-guarded (completion rate is bounded by job duration, so contention
// is negligible).
type stats struct {
	admitted         atomic.Int64
	completed        atomic.Int64
	degraded         atomic.Int64
	deadlined        atomic.Int64
	shed             atomic.Int64
	rejectedDraining atomic.Int64
	panics           atomic.Int64
	failed           atomic.Int64
	templateBuilds   atomic.Int64
	templateHits     atomic.Int64
	ecoBaseBuilds    atomic.Int64
	ecoBaseHits      atomic.Int64
	drainForced      atomic.Int64

	mu    sync.Mutex
	ring  [latWindow]float64 // milliseconds
	count int64              // total observations (ring index = count % latWindow)
}

func (s *stats) add(c *atomic.Int64, n int64) { c.Add(n) }

// observe records one completed-job latency.
func (s *stats) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.count%latWindow] = ms
	s.count++
	s.mu.Unlock()
}

// Latency summarizes the completion-latency window.
type Latency struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// StatsSnapshot is the /metrics payload.
type StatsSnapshot struct {
	Admitted         int64 `json:"admitted"`
	Completed        int64 `json:"completed"`
	Degraded         int64 `json:"degraded"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Shed             int64 `json:"shed"`
	RejectedDraining int64 `json:"rejected_draining"`
	Panics           int64 `json:"panics"`
	Failed           int64 `json:"failed"`
	TemplateBuilds   int64 `json:"template_builds"`
	TemplateHits     int64 `json:"template_hits"`
	ECOBaseBuilds    int64 `json:"eco_base_builds"`
	ECOBaseHits      int64 `json:"eco_base_hits"`
	DrainForced      int64 `json:"drain_forced"`

	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	InFlight   int  `json:"in_flight"`
	Draining   bool `json:"draining"`

	Latency Latency `json:"latency"`
}

func (s *stats) snapshot() *StatsSnapshot {
	snap := &StatsSnapshot{
		Admitted:         s.admitted.Load(),
		Completed:        s.completed.Load(),
		Degraded:         s.degraded.Load(),
		DeadlineExceeded: s.deadlined.Load(),
		Shed:             s.shed.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Panics:           s.panics.Load(),
		Failed:           s.failed.Load(),
		TemplateBuilds:   s.templateBuilds.Load(),
		TemplateHits:     s.templateHits.Load(),
		ECOBaseBuilds:    s.ecoBaseBuilds.Load(),
		ECOBaseHits:      s.ecoBaseHits.Load(),
		DrainForced:      s.drainForced.Load(),
	}
	s.mu.Lock()
	n := s.count
	if n > latWindow {
		n = latWindow
	}
	lats := make([]float64, n)
	copy(lats, s.ring[:n])
	snap.Latency.Count = s.count
	s.mu.Unlock()
	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.Latency.P50MS = quantile(lats, 0.50)
		snap.Latency.P90MS = quantile(lats, 0.90)
		snap.Latency.P99MS = quantile(lats, 0.99)
		snap.Latency.MaxMS = lats[len(lats)-1]
	}
	return snap
}

// quantile reads the q-th quantile from a sorted sample (nearest-rank:
// the smallest value with at least ceil(q*n) observations at or below it).
// int(q*n) would be the (one-too-high) rank above it for most q — at n=100
// it reads p99 from the largest sample instead of the 99th — and collapses
// to the maximum for every q at n=1.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
