package serve

import "testing"

// TestQuantileNearestRank locks the nearest-rank definition: the q-th
// quantile of a sorted n-sample is element ceil(q*n)-1. The old int(q*n)
// indexing read one rank too high everywhere q*n is not integral — p99 of
// 100 samples came back as the maximum — and always returned the only
// element's "max" interpretation at n=1 only by accident of clamping.
func TestQuantileNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1) // sorted 1..n, so value == rank
		}
		return out
	}
	tests := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"n=1 p50", seq(1), 0.50, 1},
		{"n=1 p99", seq(1), 0.99, 1},
		{"n=4 p25 exact", seq(4), 0.25, 1},
		{"n=4 p50 exact", seq(4), 0.50, 2},
		{"n=4 p90", seq(4), 0.90, 4},
		{"n=4 p99", seq(4), 0.99, 4},
		{"n=100 p50", seq(100), 0.50, 50},
		{"n=100 p90", seq(100), 0.90, 90},
		{"n=100 p99", seq(100), 0.99, 99}, // the old indexing returned 100 (the max)
		{"n=100 p100", seq(100), 1.00, 100},
		{"n=100 q=0", seq(100), 0, 1},
	}
	for _, tc := range tests {
		if got := quantile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: quantile(n=%d, q=%v) = %v, want %v", tc.name, len(tc.sorted), tc.q, got, tc.want)
		}
	}
}
