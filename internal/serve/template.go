package serve

import (
	"sync"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/placer"
)

// template is the immutable state every job with the same circuit spec can
// share: the quadratic placement system (forked per job, never solved on
// directly) and the tapping-solve cache (internally synchronized; keyed per
// ring-array geometry, which the template key encodes).
type template struct {
	sys *placer.System
	tap *assign.TapCache
}

// templateCache is a keyed singleflight: the first job for a spec builds
// the template while every concurrent job for the same spec waits on the
// entry's ready channel, so an expensive system assembly happens exactly
// once per spec no matter how many identical jobs arrive together. Failed
// builds are evicted so a transient failure does not poison the key.
type templateCache struct {
	mu sync.Mutex
	m  map[string]*templateEntry
}

type templateEntry struct {
	ready chan struct{} // closed when t/err are set
	t     *template
	err   error
}

func (c *templateCache) init() {
	c.m = make(map[string]*templateEntry)
}

// get returns the template for key, building it with build if this is the
// first request. hit reports whether the template already existed (or was
// being built by another job) — the caller's build ran only when hit is
// false and err may be non-nil.
func (c *templateCache) get(key string, build func() (*template, error)) (t *template, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.mu.Unlock()
		<-e.ready
		return e.t, true, e.err
	}
	e = &templateEntry{ready: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.t, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// Evict only our own failed entry: a concurrent retry may already
		// have replaced it.
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.t, false, e.err
}

// Len reports the number of cached templates (testing hook).
func (c *templateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
