package skew

import (
	"fmt"
	"math"

	"rotaryclk/internal/faultinject"
	"rotaryclk/internal/stop"
)

// MinCycleMean computes the minimum mean weight over all directed cycles of
// the constraint graph (edges V -> U with weight Bound for each constraint
// t_U - t_V <= Bound), using Karp's O(n*m) dynamic program. It returns
// +Inf when the graph is acyclic.
//
// This is the heart of the exact graph-based max-slack solver: every
// Fishburn constraint bound shrinks by exactly one unit per unit of slack M,
// so the system is feasible iff M is at most the minimum cycle mean of the
// M=0 constraint graph (the classic Albrecht/Korte/Schietke/Vygen view of
// cycle-time optimization).
func MinCycleMean(n int, cons []DiffConstraint) float64 {
	m, _ := minCycleMean(nil, n, cons)
	return m
}

// minCycleMean is MinCycleMean with a cooperative stop token checked once
// per DP row (each row is O(m) work).
func minCycleMean(tok *stop.Token, n int, cons []DiffConstraint) (float64, error) {
	if n == 0 || len(cons) == 0 {
		return math.Inf(1), nil
	}
	type edge struct {
		from, to int
		w        float64
	}
	edges := make([]edge, 0, len(cons))
	for _, c := range cons {
		// Relaxation edge V -> U with weight Bound (see Feasible).
		edges = append(edges, edge{from: c.V, to: c.U, w: c.Bound})
	}

	// Karp's DP with a virtual super-source: D[k][v] = min weight of a walk
	// with exactly k edges ending at v, starting anywhere (all D[0][v]=0,
	// which is equivalent to the super-source construction and keeps every
	// cycle reachable).
	inf := math.Inf(1)
	prev := make([]float64, n)
	cur := make([]float64, n)
	// dk[k][v] stored row by row; we need all rows for the final formula.
	rows := make([][]float64, n+1)
	rows[0] = make([]float64, n) // zeros
	for k := 1; k <= n; k++ {
		if err := stop.Check(tok, faultinject.SiteSkewIterCancel); err != nil {
			return 0, fmt.Errorf("skew: cycle-mean DP: %w", err)
		}
		for v := range cur {
			cur[v] = inf
		}
		for _, e := range edges {
			if prev[e.from] == inf && k > 1 {
				continue
			}
			base := prev[e.from]
			if k == 1 {
				base = 0
			} else if math.IsInf(base, 1) {
				continue
			}
			if w := base + e.w; w < cur[e.to] {
				cur[e.to] = w
			}
		}
		rows[k] = append([]float64(nil), cur...)
		prev, cur = cur, prev
		copy(prev, rows[k])
	}

	best := inf
	dn := rows[n]
	for v := 0; v < n; v++ {
		if math.IsInf(dn[v], 1) {
			continue // no n-edge walk ends here; v is not on a long cycle path
		}
		worst := math.Inf(-1)
		for k := 0; k < n; k++ {
			dk := rows[k][v]
			if math.IsInf(dk, 1) {
				continue
			}
			if r := (dn[v] - dk) / float64(n-k); r > worst {
				worst = r
			}
		}
		if !math.IsInf(worst, -1) && worst < best {
			best = worst
		}
	}
	return best, nil
}

// MaxSlackExact computes the maximum slack directly as the minimum cycle
// mean of the M=0 constraint graph (no binary search), then recovers a
// schedule at that slack. It matches MaxSlack to within numerical tolerance
// and is asymptotically faster (one O(n*m) pass instead of O(log(1/eps))
// Bellman-Ford runs).
func MaxSlackExact(n int, pairs []SeqPair, T, setup, hold float64) (float64, []float64, error) {
	return MaxSlackExactStop(nil, n, pairs, T, setup, hold)
}

// MaxSlackExactStop is MaxSlackExact with a cooperative stop token, checked
// once per Karp DP row and once per Bellman-Ford round of the recovery
// probes. A fired token aborts with an error wrapping the stop sentinel; no
// partial schedule is returned (the caller keeps its previous schedule as
// the best-so-far).
func MaxSlackExactStop(tok *stop.Token, n int, pairs []SeqPair, T, setup, hold float64) (float64, []float64, error) {
	if err := faultinject.Hook(faultinject.SiteSkewMaxSlack); err != nil {
		return 0, nil, err
	}
	base := Constraints(pairs, T, 0, setup, hold)
	m, err := minCycleMean(tok, n, base)
	if err != nil {
		return 0, nil, err
	}
	if math.IsInf(m, 1) {
		m = T // acyclic constraint graph: slack capped like MaxSlack's hi
	}
	// Self-loop constraints (U == V) are cycles of length 1 that Karp's DP
	// covers naturally; still, guard the recovered schedule with a
	// feasibility check, backing off by a tiny epsilon for float safety.
	for _, eps := range []float64{0, 1e-9, 1e-6, 1e-3} {
		t, ok, err := feasible(tok, n, Constraints(pairs, T, m-eps, setup, hold))
		if err != nil {
			return 0, nil, err
		}
		if ok {
			return m - eps, t, nil
		}
	}
	// Extremely ill-conditioned input: fall back to the binary search.
	return MaxSlackStop(tok, n, pairs, T, setup, hold, 1e-6)
}
