package skew

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinCycleMeanKnownGraphs(t *testing.T) {
	// Single self-loop of weight 6: mean 6.
	if m := MinCycleMean(1, []DiffConstraint{{U: 0, V: 0, Bound: 6}}); math.Abs(m-6) > 1e-9 {
		t.Errorf("self-loop mean = %v, want 6", m)
	}
	// Two-cycle 0->1 (w 3), 1->0 (w 5): mean 4. Remember constraints are
	// edges V->U, so {U:1,V:0,Bound:3} is the edge 0->1.
	cons := []DiffConstraint{
		{U: 1, V: 0, Bound: 3},
		{U: 0, V: 1, Bound: 5},
	}
	if m := MinCycleMean(2, cons); math.Abs(m-4) > 1e-9 {
		t.Errorf("2-cycle mean = %v, want 4", m)
	}
	// Add a worse cycle (self loop 10): the minimum stays 4.
	cons = append(cons, DiffConstraint{U: 0, V: 0, Bound: 10})
	if m := MinCycleMean(2, cons); math.Abs(m-4) > 1e-9 {
		t.Errorf("mean with extra cycle = %v, want 4", m)
	}
	// A better triangle: 1->2 (1), 2->0 (1), 0->1 (1): mean 1.
	cons = append(cons,
		DiffConstraint{U: 2, V: 1, Bound: 1},
		DiffConstraint{U: 0, V: 2, Bound: 1},
		DiffConstraint{U: 1, V: 0, Bound: 1},
	)
	if m := MinCycleMean(3, cons); math.Abs(m-1) > 1e-9 {
		t.Errorf("triangle mean = %v, want 1", m)
	}
}

func TestMinCycleMeanAcyclic(t *testing.T) {
	cons := []DiffConstraint{
		{U: 1, V: 0, Bound: 3},
		{U: 2, V: 1, Bound: 3},
	}
	if m := MinCycleMean(3, cons); !math.IsInf(m, 1) {
		t.Errorf("acyclic graph mean = %v, want +Inf", m)
	}
	if m := MinCycleMean(0, nil); !math.IsInf(m, 1) {
		t.Errorf("empty graph mean = %v, want +Inf", m)
	}
}

func TestMinCycleMeanNegative(t *testing.T) {
	// Negative-mean cycle: 0->1 (-5), 1->0 (1): mean -2.
	cons := []DiffConstraint{
		{U: 1, V: 0, Bound: -5},
		{U: 0, V: 1, Bound: 1},
	}
	if m := MinCycleMean(2, cons); math.Abs(m+2) > 1e-9 {
		t.Errorf("negative mean = %v, want -2", m)
	}
}

// TestMaxSlackExactMatchesBinarySearch cross-validates Karp against the
// Bellman-Ford binary search on random instances.
func TestMaxSlackExactMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const T, setup, hold = 1000.0, 30.0, 15.0
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			continue
		}
		mBS, schedBS, err := MaxSlack(n, pairs, T, setup, hold, 1e-6)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mEx, schedEx, err := MaxSlackExact(n, pairs, T, setup, hold)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		if math.Abs(mBS-mEx) > 1e-3 {
			t.Fatalf("trial %d: binary search M=%v, Karp M=%v", trial, mBS, mEx)
		}
		if v := Verify(schedEx, Constraints(pairs, T, mEx, setup, hold)); v > 1e-6 {
			t.Fatalf("trial %d: exact schedule violates constraints by %v", trial, v)
		}
		_ = schedBS
	}
}

// TestMaxSlackExactTimingDoesNotClose mirrors the negative-slack case.
func TestMaxSlackExactTimingDoesNotClose(t *testing.T) {
	pairs := []SeqPair{{U: 0, V: 0, DMax: 5000, DMin: 5000}}
	M, _, err := MaxSlackExact(1, pairs, 1000, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(M-(1000-5000-30)) > 1e-3 {
		t.Errorf("M = %v", M)
	}
}

func BenchmarkMaxSlackBinarySearch(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	pairs := buildRandomPairs(rng, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxSlack(40, pairs, 1000, 30, 15, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxSlackKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	pairs := buildRandomPairs(rng, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaxSlackExact(40, pairs, 1000, 30, 15); err != nil {
			b.Fatal(err)
		}
	}
}
