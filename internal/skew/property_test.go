package skew

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests over random small constraint graphs. The properties
// are the contracts the flow relies on:
//
//  1. the max-slack schedule achieves its claimed slack on every setup and
//     hold constraint (so for M >= 0 no slack is negative), and
//  2. the cost-driven variants (MinDelta, WeightedSum) never push any slack
//     below the working bound their constraint system encodes.

const (
	propT     = 1000.0
	propSetup = 30.0
	propHold  = 15.0
	propTol   = 1e-4
	// slackEps absorbs the binary-search tolerance and Bellman-Ford's Eps
	// relaxation slop.
	slackEps = 1e-3
)

// TestPropertyFeasibleCertificatesVerifyWithinEps is the shared-tolerance
// contract between Feasible and Verify: every certificate Feasible returns
// may violate a constraint only by the relaxation slop Eps, so exact
// verification against the same constant never reports a certified system
// as infeasible. Random systems of both shapes (raw difference constraints
// and Fishburn expansions, self-loops included) are exercised.
func TestPropertyFeasibleCertificatesVerifyWithinEps(t *testing.T) {
	// Every property test owns a dedicated rand.Rand seeded at declaration
	// (never the shared global source), so the tests are deterministic and
	// safe to run concurrently with each other.
	t.Parallel()
	rng := rand.New(rand.NewSource(45))
	feasible := 0
	for trial := 0; feasible < 40 && trial < 400; trial++ {
		n := 2 + rng.Intn(7)
		var cons []DiffConstraint
		if trial%2 == 0 {
			// Raw random difference constraints, mostly-negative bounds so a
			// good fraction of the systems are infeasible too.
			m := 1 + rng.Intn(3*n)
			for e := 0; e < m; e++ {
				u, v := rng.Intn(n), rng.Intn(n)
				cons = append(cons, DiffConstraint{U: u, V: v, Bound: (rng.Float64() - 0.4) * 100})
			}
		} else {
			pairs := buildRandomPairs(rng, n)
			// Self pairs expand to self-loop constraints.
			pairs = append(pairs, SeqPair{U: rng.Intn(n), V: rng.Intn(n), DMax: 400, DMin: 100})
			m := (rng.Float64() - 0.5) * propT
			cons = Constraints(pairs, propT, m, propSetup, propHold)
		}
		tt, ok := Feasible(n, cons)
		if !ok {
			continue
		}
		feasible++
		if v := Verify(tt, cons); v > Eps {
			t.Fatalf("trial %d: Feasible certificate violates constraints by %v > Eps", trial, v)
		}
	}
	if feasible < 40 {
		t.Fatalf("only %d feasible systems generated; property undersampled", feasible)
	}
}

// TestVerifyEmptyAndSelfLoop locks the degenerate Verify cases: an empty
// constraint set (or one of satisfied self-loops only) reports no violation
// — 0, not the -Inf that used to leak into reports — while a violated
// self-loop still surfaces positively.
func TestVerifyEmptyAndSelfLoop(t *testing.T) {
	t.Parallel() // pure function, no shared state
	if v := Verify(nil, nil); v != 0 {
		t.Errorf("Verify of empty set = %v, want 0", v)
	}
	if v := Verify([]float64{1}, []DiffConstraint{{U: 0, V: 0, Bound: 5}}); v != 0 {
		t.Errorf("Verify of single satisfied self-loop = %v, want 0", v)
	}
	if v := Verify([]float64{1}, []DiffConstraint{{U: 0, V: 0, Bound: -2}}); v != 2 {
		t.Errorf("Verify of violated self-loop = %v, want 2", v)
	}
	// A satisfied self-loop must not mask the margin of a real constraint.
	cons := []DiffConstraint{{U: 0, V: 0, Bound: 1}, {U: 0, V: 1, Bound: 5}}
	if v := Verify([]float64{10, 6}, cons); v != -1 {
		t.Errorf("Verify with satisfied self-loop + pair = %v, want -1", v)
	}
}

// pairSlacks returns the worst setup and hold slack of a schedule at slack
// margin 0 (i.e. the raw per-pair slacks of formulation (6)-(7)).
func pairSlacks(t []float64, pairs []SeqPair) (setup, hold float64) {
	setup, hold = math.Inf(1), math.Inf(1)
	for _, p := range pairs {
		d := t[p.U] - t[p.V]
		setup = math.Min(setup, propT-p.DMax-propSetup-d)
		hold = math.Min(hold, p.DMin-propHold+d)
	}
	return setup, hold
}

func TestPropertyMaxSlackAchievesItsSlack(t *testing.T) {
	t.Parallel() // owns its rng; see the note in the first property test
	rng := rand.New(rand.NewSource(42))
	trials := 0
	for trials < 30 {
		n := 3 + rng.Intn(6)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			continue
		}
		trials++
		M, sched, err := MaxSlack(n, pairs, propT, propSetup, propHold, propTol)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		setup, hold := pairSlacks(sched, pairs)
		worst := math.Min(setup, hold)
		// The schedule must realize the claimed slack on every constraint...
		if worst < M-slackEps {
			t.Fatalf("trial %d: worst slack %v below claimed M=%v", trials, worst, M)
		}
		// ...so whenever the instance closes timing (M >= 0), no setup or
		// hold slack is negative.
		if M >= 0 && worst < -slackEps {
			t.Fatalf("trial %d: M=%v but negative slack %v", trials, M, worst)
		}
		// And M is maximal: no uniform slack M + 2*tol is feasible.
		if _, ok := Feasible(n, Constraints(pairs, propT, M+10*propTol, propSetup, propHold)); ok {
			t.Fatalf("trial %d: M=%v is not maximal", trials, M)
		}
	}
}

// randomAnchors builds anchors within the schedule's own delay range so the
// cost-driven instances are nontrivial but usually feasible.
func randomAnchors(rng *rand.Rand, sched []float64) []Anchor {
	anchors := make([]Anchor, len(sched))
	for i := range anchors {
		anchors[i] = Anchor{
			A:   sched[i] + (rng.Float64()-0.5)*100,
			TCI: rng.Float64() * 20,
		}
	}
	return anchors
}

func TestPropertyMinDeltaKeepsWorkingSlack(t *testing.T) {
	t.Parallel() // owns its rng; see the note in the first property test
	rng := rand.New(rand.NewSource(43))
	trials := 0
	for trials < 30 {
		n := 3 + rng.Intn(6)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			continue
		}
		M, sched, err := MaxSlack(n, pairs, propT, propSetup, propHold, propTol)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		// Work at half the max slack, the flow's own convention.
		work := M / 2
		cons := Constraints(pairs, propT, work, propSetup, propHold)
		delta, dt, err := MinDelta(n, cons, randomAnchors(rng, sched), propTol)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		// The cost-driven schedule must still satisfy every working
		// constraint: no slack drops below the scheduled bound.
		if v := Verify(dt, cons); v > slackEps {
			t.Fatalf("trial %d: MinDelta schedule violates working constraints by %v", trials, v)
		}
		setup, hold := pairSlacks(dt, pairs)
		if worst := math.Min(setup, hold); worst < work-slackEps {
			t.Fatalf("trial %d: worst slack %v below working bound %v", trials, worst, work)
		}
		if delta < 0 {
			t.Fatalf("trial %d: negative Delta %v", trials, delta)
		}
	}
}

func TestPropertyWeightedSumKeepsWorkingSlack(t *testing.T) {
	t.Parallel() // owns its rng; see the note in the first property test
	rng := rand.New(rand.NewSource(44))
	trials := 0
	for trials < 30 {
		n := 3 + rng.Intn(6)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			continue
		}
		M, sched, err := MaxSlack(n, pairs, propT, propSetup, propHold, propTol)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		work := M / 2
		cons := Constraints(pairs, propT, work, propSetup, propHold)
		targets := make([]float64, n)
		weights := make([]float64, n)
		for i := range targets {
			targets[i] = sched[i] + (rng.Float64()-0.5)*100
			weights[i] = 1 + rng.Float64()*10
		}
		obj, wt, err := WeightedSum(n, cons, targets, weights)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		if v := Verify(wt, cons); v > slackEps {
			t.Fatalf("trial %d: WeightedSum schedule violates working constraints by %v", trials, v)
		}
		setup, hold := pairSlacks(wt, pairs)
		if worst := math.Min(setup, hold); worst < work-slackEps {
			t.Fatalf("trial %d: worst slack %v below working bound %v", trials, worst, work)
		}
		// The reported objective is the true weighted mismatch of the
		// returned schedule, and it is never negative.
		check := 0.0
		for i := range wt {
			check += weights[i] * math.Abs(wt[i]-targets[i])
		}
		if math.Abs(check-obj) > 1e-6 || obj < 0 {
			t.Fatalf("trial %d: objective %v, recomputed %v", trials, obj, check)
		}
	}
}
