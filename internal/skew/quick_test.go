package skew

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rotaryclk/internal/lp"
)

// TestQuickFeasibleVsLP: Bellman-Ford feasibility of random difference
// constraint systems must agree with the LP solver's verdict, and any
// returned assignment must satisfy every constraint.
func TestQuickFeasibleVsLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		var cons []DiffConstraint
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || rng.Float64() < 0.5 {
					continue
				}
				cons = append(cons, DiffConstraint{U: u, V: v, Bound: float64(rng.Intn(21) - 10)})
			}
		}
		tt, ok := Feasible(n, cons)
		if ok && Verify(tt, cons) > 1e-9 {
			return false
		}
		// LP check: feasibility of {t_U - t_V <= Bound}.
		p := lp.NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("", 0, -lp.Inf, lp.Inf)
		}
		for _, c := range cons {
			p.AddConstraint(lp.LE, c.Bound,
				lp.Coef{Var: vars[c.U], Val: 1}, lp.Coef{Var: vars[c.V], Val: -1})
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		lpFeasible := sol.Status == lp.Optimal || sol.Status == lp.Unbounded
		return ok == lpFeasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxSlackMonotone: the max slack never increases when constraints
// tighten (DMax grows).
func TestQuickMaxSlackMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			return true
		}
		m1, _, err := MaxSlackExact(n, pairs, 1000, 30, 15)
		if err != nil {
			return false
		}
		worse := append([]SeqPair(nil), pairs...)
		for i := range worse {
			worse[i].DMax += 100
		}
		m2, _, err := MaxSlackExact(n, worse, 1000, 30, 15)
		if err != nil {
			return false
		}
		return m2 <= m1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
