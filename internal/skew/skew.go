// Package skew implements the clock skew scheduling algorithms of Section
// VII of the paper:
//
//   - MaxSlack: the classic Fishburn max-slack schedule under long-path and
//     short-path constraints, solved with the graph-based binary search of
//     Deokar/Sapatnekar (Bellman-Ford feasibility on the constraint graph).
//   - MinDelta: the cost-driven variant that pulls every flip-flop's delay
//     target toward the phase available at the nearest point of its rotary
//     ring, minimizing the maximum mismatch Delta.
//   - WeightedSum: the alternative cost-driven objective minimizing
//     sum w_i |t_i - target_i|, solved exactly through the LP dual, which is
//     a min-cost circulation.
//
// All schedules are vectors of clock delay targets t-hat indexed by
// flip-flop index 0..n-1 (callers map netlist cell IDs to these indices).
//
// Error discipline: infeasibility of a caller-supplied constraint system is
// an expected outcome and is returned as an error wrapping ErrInfeasible.
// Panics are reserved for API misuse independent of the data — a constraint
// referencing a variable outside [0,n) is a bug in the caller's index
// mapping, not a property of the instance, and panics in Feasible.
package skew

import (
	"errors"
	"fmt"
	"math"

	"rotaryclk/internal/faultinject"
	"rotaryclk/internal/mcmf"
	"rotaryclk/internal/stop"
)

// ErrInfeasible marks schedules that do not exist: the difference-constraint
// system (or its cost-driven extension) admits no solution. Callers match it
// with errors.Is to drive recovery (relax the working slack, fall back to
// the max-slack schedule).
var ErrInfeasible = errors.New("skew: infeasible")

// SeqPair is a sequentially adjacent flip-flop pair: U launches, V captures,
// with extreme combinational delays between them.
type SeqPair struct {
	U, V       int
	DMax, DMin float64
}

// DiffConstraint is the difference constraint t[U] - t[V] <= Bound.
type DiffConstraint struct {
	U, V  int
	Bound float64
}

// Constraints expands sequential pairs into the Fishburn difference
// constraints (6)-(7) for period T, slack M, and the given setup/hold times:
//
//	t_U - t_V <= T - DMax - setup - M      (long path)
//	t_V - t_U <= DMin - hold - M           (short path)
//
// Self pairs (U == V) become self-loop constraints 0 <= Bound, which the
// feasibility check handles naturally.
func Constraints(pairs []SeqPair, T, M, setup, hold float64) []DiffConstraint {
	cons := make([]DiffConstraint, 0, 2*len(pairs))
	for _, p := range pairs {
		cons = append(cons,
			DiffConstraint{U: p.U, V: p.V, Bound: T - p.DMax - setup - M},
			DiffConstraint{U: p.V, V: p.U, Bound: p.DMin - hold - M},
		)
	}
	return cons
}

// Eps is the package's shared feasibility tolerance. Feasible stops
// relaxing once no constraint improves by more than Eps, so the potentials
// it certifies may violate a constraint by up to Eps — which is exactly the
// slop Verify's callers must allow: a schedule is feasible-within-tolerance
// when Verify(t, cons) <= Eps. Both functions reference this one constant
// so the relaxation slop and the verification threshold cannot drift apart.
const Eps = 1e-9

// Feasible solves the difference-constraint system over n variables with
// Bellman-Ford. On success it returns a satisfying assignment (shortest-path
// potentials, shifted so the minimum is zero); the assignment satisfies
// every constraint to within Eps. Constraints referencing variables outside
// [0,n) cause a panic.
func Feasible(n int, cons []DiffConstraint) ([]float64, bool) {
	t, ok, _ := feasible(nil, n, cons)
	return t, ok
}

// feasible is Feasible with a cooperative stop token checked once per
// Bellman-Ford round (each round is O(m) work). A fired token abandons the
// relaxation and reports the stop error; the partial distance vector is not
// a certificate and is discarded.
func feasible(tok *stop.Token, n int, cons []DiffConstraint) ([]float64, bool, error) {
	// Virtual source with zero-weight edges to every node is equivalent to
	// initializing all distances to zero.
	dist := make([]float64, n)
	for iter := 0; iter <= n; iter++ {
		if err := stop.Check(tok, faultinject.SiteSkewIterCancel); err != nil {
			return nil, false, fmt.Errorf("skew: feasibility check: %w", err)
		}
		changed := false
		for _, c := range cons {
			if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
				panic(fmt.Sprintf("skew: constraint %+v out of range n=%d", c, n))
			}
			// t_U <= t_V + Bound: relax edge V -> U with weight Bound.
			if nd := dist[c.V] + c.Bound; nd < dist[c.U]-Eps {
				dist[c.U] = nd
				changed = true
			}
		}
		if !changed {
			normalize(dist)
			return dist, true, nil
		}
	}
	return nil, false, nil
}

func normalize(t []float64) {
	if len(t) == 0 {
		return
	}
	min := t[0]
	for _, v := range t {
		if v < min {
			min = v
		}
	}
	for i := range t {
		t[i] -= min
	}
}

// MaxSlack computes the maximum slack M such that the constraint system of
// the pairs is feasible, together with a schedule achieving it (the
// formulation (5)-(7) of the paper). The slack is found by binary search to
// tol; Bellman-Ford provides each feasibility certificate.
func MaxSlack(n int, pairs []SeqPair, T, setup, hold, tol float64) (float64, []float64, error) {
	return MaxSlackStop(nil, n, pairs, T, setup, hold, tol)
}

// MaxSlackStop is MaxSlack with a cooperative stop token; the token is
// checked once per Bellman-Ford round of every feasibility probe, so a fired
// deadline surfaces within one O(m) pass.
func MaxSlackStop(tok *stop.Token, n int, pairs []SeqPair, T, setup, hold, tol float64) (float64, []float64, error) {
	if tol <= 0 {
		tol = 1e-3
	}
	// The system is always feasible for sufficiently negative M (every
	// constraint bound grows as M falls), so widen the lower bracket until
	// it certifies feasibility. A very negative optimum honestly reports a
	// design that cannot close timing at this period.
	lo, hi := -T, T
	for {
		_, ok, err := feasible(tok, n, Constraints(pairs, T, lo, setup, hold))
		if err != nil {
			return 0, nil, err
		}
		if ok {
			break
		}
		lo *= 2
		if lo < -1e6*T {
			return 0, nil, fmt.Errorf("skew: constraints unsatisfiable even at slack %v: %w", lo, ErrInfeasible)
		}
	}
	var bestT []float64
	t, ok, err := feasible(tok, n, Constraints(pairs, T, hi, setup, hold))
	if err != nil {
		return 0, nil, err
	}
	if ok {
		return hi, t, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		t, ok, err := feasible(tok, n, Constraints(pairs, T, mid, setup, hold))
		if err != nil {
			return 0, nil, err
		}
		if ok {
			lo, bestT = mid, t
		} else {
			hi = mid
		}
	}
	if bestT == nil {
		t, ok, err := feasible(tok, n, Constraints(pairs, T, lo, setup, hold))
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, fmt.Errorf("skew: internal: feasible lower bound lost")
		}
		bestT = t
	}
	return lo, bestT, nil
}

// Anchor carries the rotary-ring attraction data of one flip-flop for the
// cost-driven formulations: A is the clock delay at the nearest ring point c
// (t_ref + t_ref,c) and TCI the stub delay t_{c,i} from c to the flip-flop.
type Anchor struct {
	A   float64
	TCI float64
}

// MinDelta solves the cost-driven skew optimization of Section VII: find a
// schedule satisfying the difference constraints cons that minimizes the
// maximum anchor mismatch Delta, where per flip-flop i
//
//	A_i + 2 TCI_i - t_i <= Delta   and   t_i - A_i <= Delta.
//
// It binary-searches Delta, checking feasibility of the extended constraint
// graph (a ground node pins the absolute values).
func MinDelta(n int, cons []DiffConstraint, anchors []Anchor, tol float64) (float64, []float64, error) {
	return MinDeltaStop(nil, n, cons, anchors, tol)
}

// MinDeltaStop is MinDelta with a cooperative stop token threaded into every
// feasibility probe of the Delta binary search.
func MinDeltaStop(tok *stop.Token, n int, cons []DiffConstraint, anchors []Anchor, tol float64) (float64, []float64, error) {
	if err := faultinject.Hook(faultinject.SiteSkewMinDelta); err != nil {
		return 0, nil, err
	}
	if len(anchors) != n {
		return 0, nil, fmt.Errorf("skew: %d anchors for %d flip-flops", len(anchors), n)
	}
	if tol <= 0 {
		tol = 1e-3
	}
	// Base feasibility (Delta = inf) and an initial schedule to bound Delta.
	t0, ok, err := feasible(tok, n, cons)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, fmt.Errorf("skew: difference constraints: %w", ErrInfeasible)
	}
	// Ground node n: t[n] = 0 by convention (it only enters via bound arcs,
	// and the bound arcs force consistency with the absolute anchors).
	build := func(delta float64) []DiffConstraint {
		out := make([]DiffConstraint, 0, len(cons)+2*n)
		out = append(out, cons...)
		for i, a := range anchors {
			// t_i - t_g <= A_i + Delta
			out = append(out, DiffConstraint{U: i, V: n, Bound: a.A + delta})
			// t_g - t_i <= -(A_i + 2 TCI_i - Delta)
			out = append(out, DiffConstraint{U: n, V: i, Bound: delta - a.A - 2*a.TCI})
		}
		return out
	}
	// Lower bound: Delta >= max TCI_i (adding the two per-FF constraints).
	lo := 0.0
	for _, a := range anchors {
		if a.TCI > lo {
			lo = a.TCI
		}
	}
	// Upper bound from the unconstrained-anchor schedule t0, shifted to
	// minimize its own mismatch.
	hi := lo
	shift := bestShift(t0, anchors)
	for i, a := range anchors {
		ti := t0[i] + shift
		hi = math.Max(hi, math.Max(a.A+2*a.TCI-ti, ti-a.A))
	}
	hi += 1 // strictly feasible margin
	var best []float64
	for hi-lo > tol {
		mid := (lo + hi) / 2
		t, ok, err := feasible(tok, n+1, build(mid))
		if err != nil {
			return 0, nil, err
		}
		if ok {
			hi = mid
			best = rebase(t)
		} else {
			lo = mid
		}
	}
	if best == nil {
		t, ok, err := feasible(tok, n+1, build(hi))
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			return 0, nil, fmt.Errorf("skew: internal: upper bound infeasible")
		}
		best = rebase(t)
	}
	return hi, best, nil
}

// rebase shifts a schedule with ground node at index n so the ground sits at
// zero, then drops it.
func rebase(t []float64) []float64 {
	n := len(t) - 1
	g := t[n]
	out := make([]float64, n)
	for i := range out {
		out[i] = t[i] - g
	}
	return out
}

// bestShift returns the scalar shift minimizing the maximum mismatch of
// schedule t against the anchors (difference constraints are shift
// invariant, so this is free).
func bestShift(t []float64, anchors []Anchor) float64 {
	// Minimize max_i max(A_i + 2TCI_i - t_i - s, t_i + s - A_i): the upper
	// envelope is piecewise linear in s; optimum at the midpoint of the
	// extreme residuals.
	loNeed, hiNeed := math.Inf(-1), math.Inf(1)
	for i, a := range anchors {
		loNeed = math.Max(loNeed, a.A+2*a.TCI-t[i]) // wants s >= this - Delta
		hiNeed = math.Min(hiNeed, a.A-t[i])         // wants s <= this + Delta
	}
	if math.IsInf(loNeed, -1) {
		return 0
	}
	return (loNeed + hiNeed) / 2
}

// WeightedSum solves the weighted-sum cost-driven formulation: minimize
// sum_i w_i |t_i - target_i| subject to the difference constraints, where
// target_i = A_i + TCI_i is the realized delay through the nearest ring
// point. Weights are rounded to positive integers (the paper's natural
// choice w_i = l_i is in micrometers, so unit resolution is ample).
//
// The LP dual is a min-cost circulation: each difference constraint
// t_U - t_V <= b becomes an infinite-capacity arc U->V of cost b, and each
// flip-flop exchanges up to w_i units with a ground node at cost +-target_i.
// Optimal node potentials of the residual network recover the schedule.
func WeightedSum(n int, cons []DiffConstraint, targets []float64, weights []float64) (float64, []float64, error) {
	return WeightedSumStop(nil, n, cons, targets, weights)
}

// WeightedSumStop is WeightedSum with a cooperative stop token threaded into
// the base feasibility probe and the min-cost circulation.
func WeightedSumStop(tok *stop.Token, n int, cons []DiffConstraint, targets []float64, weights []float64) (float64, []float64, error) {
	if err := faultinject.Hook(faultinject.SiteSkewWeightedSum); err != nil {
		return 0, nil, err
	}
	if len(targets) != n || len(weights) != n {
		return 0, nil, fmt.Errorf("skew: targets/weights length mismatch")
	}
	if _, ok, err := feasible(tok, n, cons); err != nil {
		return 0, nil, err
	} else if !ok {
		return 0, nil, fmt.Errorf("skew: difference constraints: %w", ErrInfeasible)
	}
	g := mcmf.NewGraph(n + 1)
	g.Stop = tok
	ground := n
	wi := make([]int, n)
	total := 0
	for i, w := range weights {
		wi[i] = int(math.Round(w))
		if wi[i] < 1 {
			wi[i] = 1
		}
		total += wi[i]
	}
	infCap := total + 1
	for _, c := range cons {
		if c.U == c.V {
			if c.Bound < 0 {
				return 0, nil, fmt.Errorf("skew: negative self-loop constraint %+v", c)
			}
			continue
		}
		g.AddArc(c.U, c.V, infCap, c.Bound)
	}
	type pair struct{ toG, fromG mcmf.ArcID }
	arcs := make([]pair, n)
	for i := 0; i < n; i++ {
		arcs[i] = pair{
			toG:   g.AddArc(i, ground, wi[i], targets[i]),
			fromG: g.AddArc(ground, i, wi[i], -targets[i]),
		}
	}
	negCost, err := g.MinCostCirculation()
	if err != nil {
		return 0, nil, fmt.Errorf("skew: weighted-sum circulation: %w", err)
	}
	obj := -negCost

	dist, ok := g.ResidualDistances(ground)
	if !ok {
		return 0, nil, fmt.Errorf("skew: residual network has a negative cycle (circulation not optimal)")
	}
	t := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.IsInf(dist[i], 1) {
			// Not connected to ground in the residual graph: both bound
			// arcs saturated in the same direction cannot happen (they are
			// antiparallel), so this means w_i = 0 paths; fall back to the
			// target itself.
			t[i] = targets[i]
			continue
		}
		t[i] = -dist[i]
	}
	// The integer-rounded weights give the exact optimum of the rounded
	// problem; report the objective of the recovered schedule under the
	// true weights for honesty.
	trueObj := 0.0
	for i := 0; i < n; i++ {
		trueObj += weights[i] * math.Abs(t[i]-targets[i])
	}
	_ = obj
	return trueObj, t, nil
}

// Verify checks a schedule against the difference constraints, returning
// the worst violation: <= 0 means feasible, and certificates produced by
// Feasible may legitimately violate by up to Eps (compare against Eps, not
// 0, when verifying them). A self-loop constraint 0 <= Bound contributes a
// violation of -Bound only when violated (Bound < 0); satisfied self-loops
// constrain nothing and are skipped. An empty constraint set — or one whose
// every constraint is a satisfied self-loop — has no violation at all and
// returns 0, never -Inf.
func Verify(t []float64, cons []DiffConstraint) float64 {
	worst := math.Inf(-1)
	for _, c := range cons {
		var v float64
		if c.U == c.V {
			if c.Bound >= 0 {
				continue
			}
			v = -c.Bound
		} else {
			v = t[c.U] - t[c.V] - c.Bound
		}
		if v > worst {
			worst = v
		}
	}
	if math.IsInf(worst, -1) {
		return 0
	}
	return worst
}
