package skew

import (
	"math"
	"math/rand"
	"testing"

	"rotaryclk/internal/lp"
)

func TestConstraintsExpansion(t *testing.T) {
	pairs := []SeqPair{{U: 0, V: 1, DMax: 400, DMin: 100}}
	cons := Constraints(pairs, 1000, 10, 30, 15)
	if len(cons) != 2 {
		t.Fatalf("cons = %+v", cons)
	}
	// Long path: t0 - t1 <= 1000 - 400 - 30 - 10 = 560.
	if cons[0].U != 0 || cons[0].V != 1 || math.Abs(cons[0].Bound-560) > 1e-9 {
		t.Errorf("long path = %+v", cons[0])
	}
	// Short path: t1 - t0 <= 100 - 15 - 10 = 75.
	if cons[1].U != 1 || cons[1].V != 0 || math.Abs(cons[1].Bound-75) > 1e-9 {
		t.Errorf("short path = %+v", cons[1])
	}
}

func TestFeasibleSimple(t *testing.T) {
	cons := []DiffConstraint{
		{U: 0, V: 1, Bound: 5},  // t0 - t1 <= 5
		{U: 1, V: 0, Bound: -2}, // t1 - t0 <= -2 => t0 >= t1 + 2
	}
	tt, ok := Feasible(2, cons)
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	if v := Verify(tt, cons); v > 1e-9 {
		t.Errorf("violation %v", v)
	}
	d := tt[0] - tt[1]
	if d < 2-1e-9 || d > 5+1e-9 {
		t.Errorf("t0-t1 = %v outside [2,5]", d)
	}
}

func TestFeasibleInfeasible(t *testing.T) {
	cons := []DiffConstraint{
		{U: 0, V: 1, Bound: -3}, // t0 <= t1 - 3
		{U: 1, V: 0, Bound: -3}, // t1 <= t0 - 3 => contradiction
	}
	if _, ok := Feasible(2, cons); ok {
		t.Fatal("infeasible system reported feasible")
	}
}

func TestFeasibleSelfLoop(t *testing.T) {
	if _, ok := Feasible(1, []DiffConstraint{{U: 0, V: 0, Bound: -1}}); ok {
		t.Fatal("negative self-loop must be infeasible")
	}
	if _, ok := Feasible(1, []DiffConstraint{{U: 0, V: 0, Bound: 1}}); !ok {
		t.Fatal("positive self-loop must be feasible")
	}
}

func TestFeasibleNormalized(t *testing.T) {
	tt, ok := Feasible(3, []DiffConstraint{{U: 0, V: 1, Bound: -10}})
	if !ok {
		t.Fatal("infeasible")
	}
	min := math.Inf(1)
	for _, v := range tt {
		min = math.Min(min, v)
	}
	if math.Abs(min) > 1e-12 {
		t.Errorf("schedule not normalized: min %v", min)
	}
}

func buildRandomPairs(rng *rand.Rand, n int) []SeqPair {
	var pairs []SeqPair
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() < 0.5 {
				continue
			}
			dmin := 50 + rng.Float64()*200
			dmax := dmin + rng.Float64()*400
			pairs = append(pairs, SeqPair{U: u, V: v, DMax: dmax, DMin: dmin})
		}
	}
	return pairs
}

func TestMaxSlackVsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const T, setup, hold = 1000.0, 30.0, 15.0
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(4)
		pairs := buildRandomPairs(rng, n)
		if len(pairs) == 0 {
			continue
		}
		M, sched, err := MaxSlack(n, pairs, T, setup, hold, 1e-4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Schedule must satisfy constraints at slack M (within search tol).
		if v := Verify(sched, Constraints(pairs, T, M, setup, hold)); v > 1e-6 {
			t.Fatalf("trial %d: schedule violates constraints by %v", trial, v)
		}
		// LP: maximize M.
		p := lp.NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("", 0, -lp.Inf, lp.Inf)
		}
		mv := p.AddVar("M", -1, -lp.Inf, lp.Inf) // maximize M
		for _, pr := range pairs {
			// t_U - t_V + M <= T - DMax - setup
			p.AddConstraint(lp.LE, T-pr.DMax-setup,
				lp.Coef{Var: vars[pr.U], Val: 1}, lp.Coef{Var: vars[pr.V], Val: -1}, lp.Coef{Var: mv, Val: 1})
			// t_U - t_V >= M + hold - DMin
			p.AddConstraint(lp.GE, hold-pr.DMin,
				lp.Coef{Var: vars[pr.U], Val: 1}, lp.Coef{Var: vars[pr.V], Val: -1}, lp.Coef{Var: mv, Val: -1})
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP %v %v", trial, sol.Status, err)
		}
		if math.Abs(sol.X[mv]-M) > 1e-2 {
			t.Fatalf("trial %d: graph M=%v, LP M=%v", trial, M, sol.X[mv])
		}
	}
}

func TestMaxSlackNegativeWhenTimingDoesNotClose(t *testing.T) {
	// Combinational delay far beyond the period: the schedule exists but
	// only at a (large) negative slack, honestly reporting a design that
	// cannot close timing. The self-loop forces M <= T - DMax - setup.
	pairs := []SeqPair{{U: 0, V: 0, DMax: 5000, DMin: 5000}}
	M, sched, err := MaxSlack(1, pairs, 1000, 30, 15, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 - 5000 - 30
	if math.Abs(M-want) > 0.1 {
		t.Errorf("M = %v, want about %v", M, want)
	}
	if len(sched) != 1 {
		t.Errorf("schedule = %v", sched)
	}
}

func TestMinDeltaPinsToAnchors(t *testing.T) {
	// No difference constraints: Delta should reach max TCI and every t_i
	// should land inside [A_i + 2 TCI_i - Delta, A_i + Delta].
	anchors := []Anchor{{A: 100, TCI: 5}, {A: 400, TCI: 20}, {A: 900, TCI: 1}}
	delta, tt, err := MinDelta(3, nil, anchors, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-20) > 1e-2 {
		t.Errorf("delta = %v, want 20 (max TCI)", delta)
	}
	for i, a := range anchors {
		if tt[i] < a.A+2*a.TCI-delta-1e-6 || tt[i] > a.A+delta+1e-6 {
			t.Errorf("t[%d] = %v outside anchor window", i, tt[i])
		}
	}
}

func TestMinDeltaRespectsConstraints(t *testing.T) {
	// Anchors want t0=0, t1=500 but a constraint forces t0 - t1 >= -100
	// (i.e. t1 - t0 <= 100): Delta must absorb the 400-ps conflict split
	// between the two flip-flops.
	anchors := []Anchor{{A: 0, TCI: 0}, {A: 500, TCI: 0}}
	cons := []DiffConstraint{{U: 1, V: 0, Bound: 100}}
	delta, tt, err := MinDelta(2, cons, anchors, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if v := Verify(tt, cons); v > 1e-6 {
		t.Fatalf("violation %v", v)
	}
	if math.Abs(delta-200) > 1e-2 {
		t.Errorf("delta = %v, want 200", delta)
	}
}

func TestMinDeltaVsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(4)
		var cons []DiffConstraint
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || rng.Float64() < 0.6 {
					continue
				}
				cons = append(cons, DiffConstraint{U: u, V: v, Bound: 50 + rng.Float64()*300})
			}
		}
		anchors := make([]Anchor, n)
		for i := range anchors {
			anchors[i] = Anchor{A: rng.Float64() * 1000, TCI: rng.Float64() * 50}
		}
		delta, tt, err := MinDelta(n, cons, anchors, 1e-5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := Verify(tt, cons); v > 1e-6 {
			t.Fatalf("trial %d: violation %v", trial, v)
		}
		// LP reference.
		p := lp.NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("", 0, -lp.Inf, lp.Inf)
		}
		dv := p.AddVar("delta", 1, 0, lp.Inf)
		for _, c := range cons {
			p.AddConstraint(lp.LE, c.Bound, lp.Coef{Var: vars[c.U], Val: 1}, lp.Coef{Var: vars[c.V], Val: -1})
		}
		for i, a := range anchors {
			p.AddConstraint(lp.LE, -a.A-2*a.TCI, lp.Coef{Var: vars[i], Val: -1}, lp.Coef{Var: dv, Val: -1})
			p.AddConstraint(lp.LE, a.A, lp.Coef{Var: vars[i], Val: 1}, lp.Coef{Var: dv, Val: -1})
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP %v %v", trial, sol.Status, err)
		}
		if math.Abs(sol.Obj-delta) > 1e-2 {
			t.Fatalf("trial %d: graph delta=%v, LP delta=%v", trial, delta, sol.Obj)
		}
	}
}

func TestWeightedSumUnconstrained(t *testing.T) {
	targets := []float64{100, 200, 300}
	weights := []float64{1, 2, 3}
	obj, tt, err := WeightedSum(3, nil, targets, weights)
	if err != nil {
		t.Fatal(err)
	}
	if obj > 1e-6 {
		t.Errorf("obj = %v, want 0", obj)
	}
	for i, tv := range tt {
		if math.Abs(tv-targets[i]) > 1e-6 {
			t.Errorf("t[%d] = %v, want %v", i, tv, targets[i])
		}
	}
}

func TestWeightedSumConflict(t *testing.T) {
	// t0 wants 0 (weight 1), t1 wants 500 (weight 3), constraint
	// t1 - t0 <= 100: cheapest fix moves t0 up by 400 => cost 400.
	targets := []float64{0, 500}
	weights := []float64{1, 3}
	cons := []DiffConstraint{{U: 1, V: 0, Bound: 100}}
	obj, tt, err := WeightedSum(2, cons, targets, weights)
	if err != nil {
		t.Fatal(err)
	}
	if v := Verify(tt, cons); v > 1e-6 {
		t.Fatalf("violation %v", v)
	}
	if math.Abs(obj-400) > 1e-6 {
		t.Errorf("obj = %v, want 400 (t=%v)", obj, tt)
	}
}

func TestWeightedSumVsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		var cons []DiffConstraint
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || rng.Float64() < 0.55 {
					continue
				}
				cons = append(cons, DiffConstraint{U: u, V: v, Bound: float64(rng.Intn(300)) - 50})
			}
		}
		if _, ok := Feasible(n, cons); !ok {
			continue
		}
		targets := make([]float64, n)
		weights := make([]float64, n)
		for i := range targets {
			targets[i] = float64(rng.Intn(1000))
			weights[i] = float64(1 + rng.Intn(5))
		}
		obj, tt, err := WeightedSum(n, cons, targets, weights)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := Verify(tt, cons); v > 1e-6 {
			t.Fatalf("trial %d: violation %v (t=%v)", trial, v, tt)
		}
		// LP reference: min sum w_i d_i, d_i >= |t_i - target_i|.
		p := lp.NewProblem()
		vars := make([]int, n)
		ds := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("", 0, -lp.Inf, lp.Inf)
			ds[i] = p.AddVar("", weights[i], 0, lp.Inf)
		}
		for _, c := range cons {
			p.AddConstraint(lp.LE, c.Bound, lp.Coef{Var: vars[c.U], Val: 1}, lp.Coef{Var: vars[c.V], Val: -1})
		}
		for i := range vars {
			p.AddConstraint(lp.LE, targets[i], lp.Coef{Var: vars[i], Val: 1}, lp.Coef{Var: ds[i], Val: -1})
			p.AddConstraint(lp.LE, -targets[i], lp.Coef{Var: vars[i], Val: -1}, lp.Coef{Var: ds[i], Val: -1})
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP %v %v", trial, sol.Status, err)
		}
		if math.Abs(sol.Obj-obj) > 1e-4*(1+math.Abs(sol.Obj)) {
			t.Fatalf("trial %d: circulation obj=%v, LP obj=%v", trial, obj, sol.Obj)
		}
	}
}

func TestWeightedSumInfeasible(t *testing.T) {
	cons := []DiffConstraint{
		{U: 0, V: 1, Bound: -3},
		{U: 1, V: 0, Bound: -3},
	}
	if _, _, err := WeightedSum(2, cons, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestVerify(t *testing.T) {
	cons := []DiffConstraint{{U: 0, V: 1, Bound: 5}}
	if v := Verify([]float64{10, 6}, cons); math.Abs(v-(-1)) > 1e-12 {
		t.Errorf("Verify = %v, want -1", v)
	}
	if v := Verify([]float64{20, 6}, cons); math.Abs(v-9) > 1e-12 {
		t.Errorf("Verify = %v, want 9", v)
	}
}
