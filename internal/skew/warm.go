package skew

import (
	"fmt"

	"rotaryclk/internal/faultinject"
	"rotaryclk/internal/stop"
)

// WarmStart re-checks a previous schedule against an (edited) constraint
// system and minimally repairs it: Bellman-Ford relaxation initialized from
// the seed instead of zeros, so entries only move when a constraint forces
// them, and a seed that already satisfies every constraint comes back
// bit-identical after a single O(m) verification round — the bounded
// "re-check only the edited rows" pass of the ECO flow. The result is NOT
// re-normalized (the seed's absolute frame is part of its meaning: tapping
// targets were derived in it).
//
// The relaxation fixpoint from a given seed is the pointwise infimum over
// constraint paths, which is order-independent, so two calls with equal
// inputs return bit-identical schedules regardless of how the edits were
// batched. It returns the repaired schedule, the number of relaxation
// rounds, and ok=false when the system is infeasible (negative constraint
// cycle); the seed is never mutated. A seed of the wrong length or a
// constraint referencing variables outside [0,n) panics, matching Feasible.
func WarmStart(n int, cons []DiffConstraint, seed []float64) ([]float64, int, bool) {
	t, rounds, ok, _ := WarmStartStop(nil, n, cons, seed)
	return t, rounds, ok
}

// WarmStartStop is WarmStart with a cooperative stop token checked once per
// relaxation round. A fired token abandons the repair and reports the stop
// error; the partial vector is not a certificate and is discarded.
func WarmStartStop(tok *stop.Token, n int, cons []DiffConstraint, seed []float64) ([]float64, int, bool, error) {
	if len(seed) != n {
		panic(fmt.Sprintf("skew: warm start seed has %d entries for %d variables", len(seed), n))
	}
	dist := make([]float64, n)
	copy(dist, seed)
	for iter := 0; iter <= n; iter++ {
		if err := stop.Check(tok, faultinject.SiteSkewIterCancel); err != nil {
			return nil, iter, false, fmt.Errorf("skew: warm-start repair: %w", err)
		}
		changed := false
		for _, c := range cons {
			if c.U < 0 || c.U >= n || c.V < 0 || c.V >= n {
				panic(fmt.Sprintf("skew: constraint %+v out of range n=%d", c, n))
			}
			if nd := dist[c.V] + c.Bound; nd < dist[c.U]-Eps {
				dist[c.U] = nd
				changed = true
			}
		}
		if !changed {
			return dist, iter + 1, true, nil
		}
	}
	return nil, n + 1, false, nil
}
