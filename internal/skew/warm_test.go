package skew

import (
	"math"
	"testing"
	"time"

	"rotaryclk/internal/stop"
)

func TestWarmStartFeasibleSeedUnchanged(t *testing.T) {
	cons := []DiffConstraint{
		{U: 0, V: 1, Bound: 5},
		{U: 1, V: 0, Bound: 5},
		{U: 2, V: 0, Bound: 3},
	}
	seed := []float64{10, 7.5, 8.25}
	got, rounds, ok := WarmStart(3, cons, seed)
	if !ok {
		t.Fatal("feasible seed reported infeasible")
	}
	if rounds != 1 {
		t.Fatalf("feasible seed took %d rounds, want 1", rounds)
	}
	for i := range seed {
		if math.Float64bits(got[i]) != math.Float64bits(seed[i]) {
			t.Fatalf("entry %d changed: %v -> %v", i, seed[i], got[i])
		}
	}
	// The seed itself must not be mutated.
	if seed[0] != 10 || seed[1] != 7.5 || seed[2] != 8.25 {
		t.Fatal("seed mutated")
	}
}

func TestWarmStartRepairsViolation(t *testing.T) {
	// t0 - t1 <= -2 forces t0 at least 2 below t1; the seed violates it.
	cons := []DiffConstraint{{U: 0, V: 1, Bound: -2}}
	seed := []float64{5, 5}
	got, _, ok := WarmStart(2, cons, seed)
	if !ok {
		t.Fatal("repairable system reported infeasible")
	}
	if v := Verify(got, cons); v > Eps {
		t.Fatalf("repaired schedule violates by %v", v)
	}
	// Repair lowers t0; t1 keeps its seed value (absolute frame preserved).
	if got[1] != 5 {
		t.Fatalf("untouched variable moved: %v", got[1])
	}
	if got[0] > 3+Eps {
		t.Fatalf("t0 = %v, want <= 3", got[0])
	}
}

func TestWarmStartInfeasible(t *testing.T) {
	// t0 - t1 <= -1 and t1 - t0 <= -1: negative cycle.
	cons := []DiffConstraint{
		{U: 0, V: 1, Bound: -1},
		{U: 1, V: 0, Bound: -1},
	}
	if _, _, ok := WarmStart(2, cons, []float64{0, 0}); ok {
		t.Fatal("negative cycle reported feasible")
	}
}

func TestWarmStartDeterministicAcrossBatching(t *testing.T) {
	// Two disjoint cones; repairing them in one batch or as two sequential
	// warm starts must agree bitwise.
	consA := []DiffConstraint{{U: 0, V: 1, Bound: -3}}
	consB := []DiffConstraint{{U: 2, V: 3, Bound: -7}}
	both := append(append([]DiffConstraint{}, consA...), consB...)
	seed := []float64{1, 1, 2, 2}

	batch, _, ok := WarmStart(4, both, seed)
	if !ok {
		t.Fatal("batch infeasible")
	}
	step1, _, ok := WarmStart(4, consA, seed)
	if !ok {
		t.Fatal("step1 infeasible")
	}
	step2, _, ok := WarmStart(4, consB, step1)
	if !ok {
		t.Fatal("step2 infeasible")
	}
	for i := range batch {
		if math.Float64bits(batch[i]) != math.Float64bits(step2[i]) {
			t.Fatalf("entry %d: batch %v vs sequential %v", i, batch[i], step2[i])
		}
	}
}

func TestWarmStartSeedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WarmStart(3, nil, []float64{0})
}

func TestWarmStartStopToken(t *testing.T) {
	tok, cancel := stop.WithTimeout(-time.Second)
	defer cancel()
	_, _, _, err := WarmStartStop(tok, 2, []DiffConstraint{{U: 0, V: 1, Bound: 0}}, []float64{0, 0})
	if !stop.IsStop(err) {
		t.Fatalf("err = %v, want stop error", err)
	}
}
