// Package steiner estimates rectilinear Steiner minimal tree (RSMT) lengths
// for signal nets: exact for two- and three-pin nets, and an iterated
// 1-Steiner refinement of the rectilinear minimum spanning tree for larger
// nets. The placer and the paper's tables use HPWL (the standard placement
// metric); this package provides the tighter estimate used by the wirelength
// ablation bench and available to power analysis.
package steiner

import (
	"math"

	"rotaryclk/internal/geom"
)

// MSTLength returns the length of the rectilinear minimum spanning tree of
// the points (Prim's algorithm, O(n^2)).
func MSTLength(pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		dist[j] = pts[0].Manhattan(pts[j])
	}
	total := 0.0
	for k := 1; k < n; k++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && dist[j] < bestD {
				best, bestD = j, dist[j]
			}
		}
		inTree[best] = true
		total += bestD
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := pts[best].Manhattan(pts[j]); d < dist[j] {
					dist[j] = d
				}
			}
		}
	}
	return total
}

// median returns the coordinate-wise median point of three points, the
// Steiner point of a three-terminal rectilinear net.
func median(a, b, c geom.Point) geom.Point {
	return geom.Pt(med3(a.X, b.X, c.X), med3(a.Y, b.Y, c.Y))
}

func med3(a, b, c float64) float64 {
	return math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
}

// Estimate returns an RSMT length estimate:
//
//   - 0 or 1 pin: 0
//   - 2 pins: the Manhattan distance (exact)
//   - 3 pins: the bounding-box half-perimeter (exact: route through the
//     median point)
//   - more: iterated 1-Steiner — repeatedly insert the median of a point
//     triple as a Steiner point while it shortens the MST.
//
// The estimate always satisfies HPWL <= Estimate <= MSTLength.
func Estimate(pts []geom.Point) float64 {
	switch len(pts) {
	case 0, 1:
		return 0
	case 2:
		return pts[0].Manhattan(pts[1])
	case 3:
		return geom.HPWL(pts)
	}
	work := append([]geom.Point(nil), pts...)
	nTerm := len(pts)
	best := MSTLength(work)
	// Iterated 1-Steiner: candidate points are medians of terminal triples
	// (a subset of the Hanan grid sufficient in practice). Each round adds
	// the single best candidate; stop when no candidate improves.
	maxSteiner := nTerm - 2 // an RSMT never needs more Steiner points
	for s := 0; s < maxSteiner; s++ {
		bestGain := 1e-9
		var bestPt geom.Point
		for i := 0; i < nTerm; i++ {
			for j := i + 1; j < nTerm; j++ {
				for k := j + 1; k < nTerm; k++ {
					cand := median(pts[i], pts[j], pts[k])
					trial := MSTLength(append(work, cand))
					if gain := best - trial; gain > bestGain {
						bestGain, bestPt = gain, cand
					}
				}
			}
		}
		if bestGain <= 1e-9 {
			break
		}
		work = append(work, bestPt)
		best = MSTLength(work)
	}
	// The estimate can never beat the HPWL lower bound; clamp defensively
	// against floating-point slack.
	if lb := geom.HPWL(pts); best < lb {
		best = lb
	}
	return best
}

// NetLength estimates the routed length of a net given its pin positions,
// choosing the cheapest applicable model. It is the drop-in alternative to
// geom.HPWL for wirelength-sensitive analyses.
func NetLength(pts []geom.Point) float64 {
	if len(pts) <= 8 {
		return Estimate(pts)
	}
	// Large nets: the cubic candidate scan is too expensive; the MST is a
	// tight upper bound (within ~4% of RSMT on random instances).
	return MSTLength(pts)
}
