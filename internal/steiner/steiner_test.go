package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rotaryclk/internal/geom"
)

func TestMSTLengthBasics(t *testing.T) {
	if MSTLength(nil) != 0 || MSTLength([]geom.Point{geom.Pt(1, 1)}) != 0 {
		t.Error("degenerate MST length should be 0")
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	if got := MSTLength(two); math.Abs(got-7) > 1e-9 {
		t.Errorf("MST of 2 points = %v, want 7", got)
	}
	// Three collinear points: MST = total span.
	line := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(9, 0)}
	if got := MSTLength(line); math.Abs(got-9) > 1e-9 {
		t.Errorf("MST = %v, want 9", got)
	}
}

func TestEstimateSmallNets(t *testing.T) {
	if Estimate(nil) != 0 || Estimate([]geom.Point{geom.Pt(0, 0)}) != 0 {
		t.Error("tiny nets should be 0")
	}
	two := []geom.Point{geom.Pt(1, 1), geom.Pt(4, 5)}
	if got := Estimate(two); math.Abs(got-7) > 1e-9 {
		t.Errorf("2-pin = %v, want 7", got)
	}
	// 3-pin L: RSMT = bbox half perimeter via the median point.
	three := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)}
	if got := Estimate(three); math.Abs(got-20) > 1e-9 {
		t.Errorf("3-pin = %v, want 20", got)
	}
}

func TestEstimateCrossBeatsM(t *testing.T) {
	// Four pins in a plus: MST = 3 edges of length 10+10+10=30 (via some
	// chain), RSMT = 20 (a cross through the center).
	pts := []geom.Point{geom.Pt(0, 5), geom.Pt(10, 5), geom.Pt(5, 0), geom.Pt(5, 10)}
	mst := MSTLength(pts)
	est := Estimate(pts)
	if est >= mst {
		t.Errorf("Steiner estimate %v did not beat MST %v", est, mst)
	}
	if math.Abs(est-20) > 1e-9 {
		t.Errorf("cross RSMT = %v, want 20", est)
	}
}

func TestEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(5)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		hp := geom.HPWL(pts)
		mst := MSTLength(pts)
		est := Estimate(pts)
		if est < hp-1e-9 {
			t.Fatalf("trial %d: estimate %v below HPWL bound %v", trial, est, hp)
		}
		if est > mst+1e-9 {
			t.Fatalf("trial %d: estimate %v above MST %v", trial, est, mst)
		}
	}
}

func TestNetLengthLargeNetsFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	if got, want := NetLength(pts), MSTLength(pts); got != want {
		t.Errorf("large net should use MST: %v vs %v", got, want)
	}
	small := pts[:5]
	if NetLength(small) > MSTLength(small) {
		t.Error("small net estimate above MST")
	}
}

func TestMedian(t *testing.T) {
	m := median(geom.Pt(0, 9), geom.Pt(5, 0), geom.Pt(9, 4))
	if m != geom.Pt(5, 4) {
		t.Errorf("median = %v, want (5,4)", m)
	}
}

// Property: the estimate is invariant under translation and point
// permutation.
func TestEstimateInvariance(t *testing.T) {
	f := func(seed int64, dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsNaN(dy) || math.Abs(dx) > 1e6 || math.Abs(dy) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*500, rng.Float64()*500)
		}
		base := Estimate(pts)
		// Translate.
		moved := make([]geom.Point, n)
		for i, p := range pts {
			moved[i] = geom.Pt(p.X+dx, p.Y+dy)
		}
		if math.Abs(Estimate(moved)-base) > 1e-6*(1+base) {
			return false
		}
		// Permute.
		perm := rng.Perm(n)
		shuffled := make([]geom.Point, n)
		for i, j := range perm {
			shuffled[i] = pts[j]
		}
		return math.Abs(Estimate(shuffled)-base) < 1e-6*(1+base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
