// Package stop provides the cooperative cancellation token threaded through
// every long-running solver loop of the flow (placer CG iterations, lp
// simplex pivots and branch-and-bound nodes, mcmf augmenting paths, assign
// candidate construction, skew scheduling iterations).
//
// A Token is a cheap atomic flag, not a context.Context: the solver loops
// are pure compute with no I/O to unblock, so all they need is a load-and-
// branch per iteration — Check on a nil token with fault injection disarmed
// costs two atomic loads. Tokens are fired either explicitly (Cancel), by a
// wall-clock deadline (WithTimeout), or by a context (WithContext, which the
// serving layer uses to map HTTP request lifecycles onto solver loops).
//
// Error discipline: a fired token surfaces as an error wrapping ErrCanceled
// or ErrDeadlineExceeded from the solver entry point that observed it. The
// solvers leave their best-effort state behind exactly as they do for
// non-convergence (placer positions are written back, branch-and-bound
// returns its incumbent), which is what lets core.Run turn cancellation into
// a degraded best-so-far result instead of a hang or a partial write.
package stop

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"rotaryclk/internal/faultinject"
)

// ErrCanceled reports that the caller explicitly canceled the work.
var ErrCanceled = errors.New("stop: canceled")

// ErrDeadlineExceeded reports that the work's deadline fired. It matches
// context.DeadlineExceeded under errors.Is so callers bridging from contexts
// can classify either way.
var ErrDeadlineExceeded = errors.New("stop: deadline exceeded")

// Token states. The zero state means "running"; tokens only ever move
// forward into one of the two stopped states (first writer wins).
const (
	running  uint32 = iota
	canceled        // Cancel
	expired         // deadline fired
)

// Token is a cooperative stop signal shared by one job and every solver loop
// working for it. All methods are safe for concurrent use and nil-safe: a
// nil *Token never stops, so solvers check unconditionally.
type Token struct {
	state atomic.Uint32
}

// New returns a token in the running state.
func New() *Token { return &Token{} }

// Cancel moves the token to the canceled state. The first of Cancel and the
// deadline wins; later firings are no-ops.
func (t *Token) Cancel() {
	if t != nil {
		t.state.CompareAndSwap(running, canceled)
	}
}

// expire moves the token to the deadline-exceeded state.
func (t *Token) expire() {
	if t != nil {
		t.state.CompareAndSwap(running, expired)
	}
}

// Stopped reports whether the token has fired. Nil-safe.
func (t *Token) Stopped() bool {
	return t != nil && t.state.Load() != running
}

// Err returns nil while running, ErrCanceled after Cancel, and
// ErrDeadlineExceeded after the deadline fired. Nil-safe.
func (t *Token) Err() error {
	if t == nil {
		return nil
	}
	switch t.state.Load() {
	case canceled:
		return ErrCanceled
	case expired:
		return ErrDeadlineExceeded
	}
	return nil
}

// WithTimeout returns a token that fires ErrDeadlineExceeded after d, and a
// release function that must be called when the work finishes to stop the
// timer (releasing early never un-fires the token). A non-positive d returns
// an already-expired token.
func WithTimeout(d time.Duration) (*Token, func()) {
	t := New()
	if d <= 0 {
		t.expire()
		return t, func() {}
	}
	timer := time.AfterFunc(d, t.expire)
	return t, func() { timer.Stop() }
}

// WithContext returns a token that fires when ctx is done — as
// ErrDeadlineExceeded when the context's deadline fired, ErrCanceled
// otherwise — and a release function that must be called when the work
// finishes to reclaim the watcher goroutine.
func WithContext(ctx context.Context) (*Token, func()) {
	t := New()
	if ctx.Done() == nil {
		return t, func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				t.expire()
			} else {
				t.Cancel()
			}
		case <-stopCh:
		}
	}()
	var once atomic.Bool
	return t, func() {
		if once.CompareAndSwap(false, true) {
			close(stopCh)
		}
	}
}

// IsStop reports whether err wraps either stop sentinel — the test callers
// use to tell cancellation apart from mathematical failure.
func IsStop(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
}

// Check is the per-iteration test every solver loop performs: it first gives
// the named fault-injection site a chance to simulate a mid-loop deadline
// (tests arm the site with ErrDeadlineExceeded or ErrCanceled to force the
// cancellation path at an exact iteration), then reads the token. Disarmed
// and with a nil token it costs two atomic loads; solvers wrap the returned
// error with their own context before surfacing it.
func Check(t *Token, site string) error {
	if err := faultinject.Hook(site); err != nil {
		return err
	}
	return t.Err()
}
