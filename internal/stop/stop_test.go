package stop

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rotaryclk/internal/faultinject"
)

func TestNilTokenNeverStops(t *testing.T) {
	var tok *Token
	if tok.Stopped() {
		t.Error("nil token reports Stopped")
	}
	if err := tok.Err(); err != nil {
		t.Errorf("nil token Err = %v", err)
	}
	// Firing a nil token must be a no-op, not a panic.
	tok.Cancel()
	tok.expire()
	if err := Check(tok, "stop.test"); err != nil {
		t.Errorf("Check(nil) = %v", err)
	}
}

func TestCancel(t *testing.T) {
	tok := New()
	if tok.Stopped() || tok.Err() != nil {
		t.Fatal("fresh token already stopped")
	}
	tok.Cancel()
	if !tok.Stopped() {
		t.Error("canceled token not Stopped")
	}
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err = %v, want ErrCanceled", err)
	}
}

// TestFirstWriterWins: a token only ever moves forward into one stopped
// state; the loser of the Cancel/deadline race must not overwrite it.
func TestFirstWriterWins(t *testing.T) {
	tok := New()
	tok.Cancel()
	tok.expire()
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("expire after Cancel changed Err to %v", err)
	}
	tok = New()
	tok.expire()
	tok.Cancel()
	if err := tok.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("Cancel after expire changed Err to %v", err)
	}
}

func TestCancelConcurrent(t *testing.T) {
	tok := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				tok.Cancel()
			} else {
				tok.expire()
			}
		}(i)
	}
	wg.Wait()
	if !tok.Stopped() {
		t.Fatal("token not stopped after concurrent firings")
	}
	if err := tok.Err(); !IsStop(err) {
		t.Fatalf("Err = %v, want a stop sentinel", err)
	}
}

func TestWithTimeout(t *testing.T) {
	tok, release := WithTimeout(5 * time.Millisecond)
	defer release()
	if tok.Stopped() {
		t.Fatal("token stopped before its deadline")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("token never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tok.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("Err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestWithTimeoutNonPositive(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		tok, release := WithTimeout(d)
		release()
		if err := tok.Err(); !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("WithTimeout(%v).Err = %v, want pre-expired", d, err)
		}
	}
}

func TestWithTimeoutRelease(t *testing.T) {
	tok, release := WithTimeout(10 * time.Millisecond)
	release() // before the deadline: the timer must not fire afterwards
	time.Sleep(20 * time.Millisecond)
	if tok.Stopped() {
		t.Error("released timer still fired")
	}
	// Releasing never un-fires a token that already stopped.
	tok2, release2 := WithTimeout(time.Nanosecond)
	for !tok2.Stopped() {
		time.Sleep(time.Millisecond)
	}
	release2()
	if !tok2.Stopped() {
		t.Error("release un-fired a stopped token")
	}
}

func TestWithContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok, release := WithContext(ctx)
	defer release()
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("token never observed the context cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("Err = %v, want ErrCanceled", err)
	}
}

func TestWithContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	tok, release := WithContext(ctx)
	defer release()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("token never observed the context deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tok.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("Err = %v, want ErrDeadlineExceeded", err)
	}
}

func TestWithContextBackground(t *testing.T) {
	// A context with no Done channel needs no watcher goroutine; the token
	// simply never fires and release is a no-op (callable twice).
	tok, release := WithContext(context.Background())
	release()
	release()
	if tok.Stopped() {
		t.Error("background-context token fired")
	}
}

func TestIsStop(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrCanceled, true},
		{ErrDeadlineExceeded, true},
		{errors.New("solver blew up"), false},
	}
	for _, c := range cases {
		if got := IsStop(c.err); got != c.want {
			t.Errorf("IsStop(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// Wrapped sentinels still classify: that is what lets core tell a
	// canceled solver apart from a broken one.
	if !IsStop(errors.Join(errors.New("cg"), ErrCanceled)) {
		t.Error("IsStop missed a wrapped ErrCanceled")
	}
}

func TestCheck(t *testing.T) {
	tok := New()
	if err := Check(tok, "stop.test"); err != nil {
		t.Fatalf("Check on a running token = %v", err)
	}
	tok.Cancel()
	if err := Check(tok, "stop.test"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check on a canceled token = %v", err)
	}
}

// TestCheckInjection: the fault-injection hook inside Check is what the
// recovery-matrix tests rely on — an armed site simulates a deadline at an
// exact iteration even though the token itself never fired.
func TestCheckInjection(t *testing.T) {
	defer faultinject.Enable(faultinject.Rule{
		Site: "stop.test.site", Call: 2, Err: ErrDeadlineExceeded,
	})()
	tok := New()
	if err := Check(tok, "stop.test.site"); err != nil {
		t.Fatalf("call 1 = %v, want nil", err)
	}
	if err := Check(tok, "stop.test.site"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("call 2 = %v, want the injected deadline", err)
	}
	if err := Check(tok, "stop.test.site"); err != nil {
		t.Fatalf("call 3 = %v, want nil (token still running)", err)
	}
}
