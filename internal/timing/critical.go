package timing

import (
	"math"
	"sort"

	"rotaryclk/internal/netlist"
)

// CriticalPath is one near-critical sequential pair together with the nets
// its maximum-delay combinational path crosses, in launch-to-capture order.
type CriticalPath struct {
	Pair  Pair
	Slack float64 // ps, as reported by the caller's slack function
	Nets  []int   // indices into Circuit.Nets along the D_max path
}

// SlackUnder returns the slack of pair p when its launching flip-flop leads
// its capturing one by skew x = t_i - t_j at period T: the distance of x
// from the nearer edge of the permissible range (negative when outside it).
// The smaller of the two distances is the binding constraint — setup at the
// high edge, hold at the low edge.
func (m Model) SlackUnder(p Pair, x, T float64) float64 {
	lo, hi := m.PermissibleRange(p, T, 0)
	return math.Min(x-lo, hi-x)
}

// ExtractCritical re-runs the D_max propagation of Analyze with predecessor
// tracking and returns the k lowest-slack pairs under slackOf, each carrying
// the net trail of its maximum-delay path. Results are ordered most critical
// first; ties break on (From, To) so the selection is deterministic. Like
// Analyze it errors on a combinational cycle.
//
// slackOf maps a pair to its criticality under the caller's current skew
// schedule (see Model.SlackUnder); smaller is more critical.
func ExtractCritical(c *netlist.Circuit, m Model, slackOf func(Pair) float64, k int) ([]CriticalPath, error) {
	if k <= 0 {
		return nil, nil
	}
	n := len(c.Cells)
	adj := buildArcs(c, m)
	topoIdx, err := topoOrder(c, adj)
	if err != nil {
		return nil, err
	}

	dmax := make([]float64, n)
	dmin := make([]float64, n)
	predU := make([]int32, n)
	predNet := make([]int32, n)
	stamp := make([]int, n)
	epoch := 0
	reach := make([]int, 0, n)
	var paths []CriticalPath

	// traceNets walks the predecessor chain from v back to src and returns
	// the crossed nets in launch-to-capture order. tail, when >= 0, is the
	// closing arc of a self-loop path (appended last).
	traceNets := func(src, v int, tail int32) []int {
		var rev []int
		if tail >= 0 {
			rev = append(rev, int(tail))
		}
		for u := v; u != src; u = int(predU[u]) {
			rev = append(rev, int(predNet[u]))
		}
		nets := make([]int, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			nets = append(nets, rev[i])
		}
		return nets
	}

	for _, src := range c.FlipFlops() {
		epoch++
		reach = reach[:0]
		stamp[src] = epoch
		reach = append(reach, src)
		for qi := 0; qi < len(reach); qi++ {
			u := reach[qi]
			if u != src && c.Cells[u].Kind == netlist.FF {
				continue
			}
			for _, e := range adj[u] {
				if stamp[e.to] != epoch {
					stamp[e.to] = epoch
					reach = append(reach, e.to)
				}
			}
		}
		sort.Slice(reach, func(a, b int) bool { return topoIdx[reach[a]] < topoIdx[reach[b]] })
		for _, u := range reach {
			dmax[u], dmin[u] = math.Inf(-1), math.Inf(1)
			predU[u], predNet[u] = -1, -1
		}
		dmax[src], dmin[src] = 0, 0
		selfMax, selfMin := math.Inf(-1), math.Inf(1)
		selfU, selfNet := int32(-1), int32(-1)
		for _, u := range reach {
			if (u != src && c.Cells[u].Kind == netlist.FF) || math.IsInf(dmax[u], -1) {
				continue
			}
			for _, e := range adj[u] {
				v := e.to
				if stamp[v] != epoch {
					continue
				}
				if v == src {
					if d := dmax[u] + e.delay; d > selfMax {
						selfMax, selfU, selfNet = d, int32(u), e.net
					}
					selfMin = math.Min(selfMin, dmin[u]+e.delay)
					continue
				}
				if d := dmax[u] + e.delay; d > dmax[v] {
					dmax[v] = d
					predU[v], predNet[v] = int32(u), e.net
				}
				if d := dmin[u] + e.delay; d < dmin[v] {
					dmin[v] = d
				}
			}
		}
		if !math.IsInf(selfMax, -1) {
			p := Pair{From: src, To: src, DMax: selfMax, DMin: selfMin}
			paths = append(paths, CriticalPath{
				Pair:  p,
				Slack: slackOf(p),
				Nets:  traceNets(src, int(selfU), selfNet),
			})
		}
		for _, v := range reach {
			if v == src || c.Cells[v].Kind != netlist.FF || math.IsInf(dmax[v], -1) {
				continue
			}
			p := Pair{From: src, To: v, DMax: dmax[v], DMin: dmin[v]}
			paths = append(paths, CriticalPath{
				Pair:  p,
				Slack: slackOf(p),
				Nets:  traceNets(src, v, -1),
			})
		}
	}

	sort.Slice(paths, func(a, b int) bool {
		if paths[a].Slack != paths[b].Slack {
			return paths[a].Slack < paths[b].Slack
		}
		if paths[a].Pair.From != paths[b].Pair.From {
			return paths[a].Pair.From < paths[b].Pair.From
		}
		return paths[a].Pair.To < paths[b].Pair.To
	})
	if len(paths) > k {
		paths = paths[:k]
	}
	return paths, nil
}
