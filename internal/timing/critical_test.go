package timing

import (
	"math"
	"testing"

	"rotaryclk/internal/geom"
	"rotaryclk/internal/netlist"
)

func TestSlackUnder(t *testing.T) {
	m := DefaultModel()
	p := Pair{DMax: 500, DMin: 100}
	lo, hi := m.PermissibleRange(p, 1000, 0)
	mid := (lo + hi) / 2
	if s := m.SlackUnder(p, mid, 1000); math.Abs(s-(hi-lo)/2) > 1e-9 {
		t.Errorf("centered slack = %v, want %v", s, (hi-lo)/2)
	}
	if s := m.SlackUnder(p, hi, 1000); s != 0 {
		t.Errorf("slack at high edge = %v, want 0", s)
	}
	if s := m.SlackUnder(p, hi+10, 1000); math.Abs(s+10) > 1e-9 {
		t.Errorf("slack outside window = %v, want -10", s)
	}
	if s := m.SlackUnder(p, lo-5, 1000); math.Abs(s+5) > 1e-9 {
		t.Errorf("slack below window = %v, want -5", s)
	}
}

// zeroSkew ranks pairs by setup slack at zero skew: lower slack = slower path.
func zeroSkew(m Model, T float64) func(Pair) float64 {
	return func(p Pair) float64 { return m.SlackUnder(p, 0, T) }
}

func TestExtractCriticalChain(t *testing.T) {
	c := chain(t)
	m := DefaultModel()
	paths, err := ExtractCritical(c, m, zeroSkew(m, 1000), 100)
	if err != nil {
		t.Fatal(err)
	}
	sta, err := Analyze(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(sta.Pairs) {
		t.Fatalf("got %d paths, Analyze found %d pairs", len(paths), len(sta.Pairs))
	}
	// Every extracted pair must match Analyze's delays exactly, and its net
	// trail must reconstruct DMax when summed hop-by-hop is not checkable
	// directly (delays live on arcs), but the trail must be non-empty and
	// reference valid nets.
	for _, cp := range paths {
		ref := pairDelayPair(sta, cp.Pair.From, cp.Pair.To)
		if ref == nil {
			t.Fatalf("extracted pair %d->%d unknown to Analyze", cp.Pair.From, cp.Pair.To)
		}
		if cp.Pair.DMax != ref.DMax || cp.Pair.DMin != ref.DMin {
			t.Errorf("pair %d->%d delays %v/%v, Analyze says %v/%v",
				cp.Pair.From, cp.Pair.To, cp.Pair.DMax, cp.Pair.DMin, ref.DMax, ref.DMin)
		}
		if len(cp.Nets) == 0 {
			t.Errorf("pair %d->%d has empty net trail", cp.Pair.From, cp.Pair.To)
		}
		for _, ni := range cp.Nets {
			if ni < 0 || ni >= len(c.Nets) {
				t.Fatalf("pair %d->%d references net %d out of range", cp.Pair.From, cp.Pair.To, ni)
			}
		}
	}
	// ff0 -> ff1 crosses n0, n1, n2 in order (cell IDs 0..3, nets 0..2).
	for _, cp := range paths {
		if cp.Pair.From == 0 && cp.Pair.To == 3 {
			want := []int{0, 1, 2}
			if len(cp.Nets) != len(want) {
				t.Fatalf("ff0->ff1 nets = %v, want %v", cp.Nets, want)
			}
			for i := range want {
				if cp.Nets[i] != want[i] {
					t.Fatalf("ff0->ff1 nets = %v, want %v", cp.Nets, want)
				}
			}
		}
	}
}

func TestExtractCriticalOrderAndTruncation(t *testing.T) {
	c, err := netlist.Generate(netlist.GenSpec{Name: "g", Cells: 800, FlipFlops: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	all, err := ExtractCritical(c, m, zeroSkew(m, 1000), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no critical paths found")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Slack < all[i-1].Slack {
			t.Fatalf("paths not sorted by slack at %d: %v after %v", i, all[i].Slack, all[i-1].Slack)
		}
	}
	topK, err := ExtractCritical(c, m, zeroSkew(m, 1000), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(topK) != 8 {
		t.Fatalf("k=8 returned %d paths", len(topK))
	}
	for i := range topK {
		if topK[i].Pair != all[i].Pair || topK[i].Slack != all[i].Slack {
			t.Fatalf("truncated selection diverges at %d: %+v vs %+v", i, topK[i], all[i])
		}
	}
	if got, _ := ExtractCritical(c, m, zeroSkew(m, 1000), 0); got != nil {
		t.Fatalf("k=0 should return nil, got %d paths", len(got))
	}
}

func TestExtractCriticalSelfLoop(t *testing.T) {
	c := netlist.New("self")
	f0 := c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.FuncNot})
	c.AddNet("q", f0.ID, g0.ID)
	c.AddNet("d", g0.ID, f0.ID)
	for _, cell := range c.Cells {
		cell.Pos = geom.Pt(0, 0)
	}
	m := DefaultModel()
	paths, err := ExtractCritical(c, m, zeroSkew(m, 1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %+v", paths)
	}
	cp := paths[0]
	if cp.Pair.From != f0.ID || cp.Pair.To != f0.ID {
		t.Fatalf("self pair = %+v", cp.Pair)
	}
	// The loop crosses both nets: q (ff0 -> g0) then d (g0 -> ff0).
	if len(cp.Nets) != 2 || cp.Nets[0] != 0 || cp.Nets[1] != 1 {
		t.Fatalf("self-loop nets = %v, want [0 1]", cp.Nets)
	}
}

func TestExtractCriticalCycleError(t *testing.T) {
	c := netlist.New("cycle")
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.FuncNot})
	g1 := c.AddCell(&netlist.Cell{Name: "g1", Kind: netlist.Gate, Fn: netlist.FuncNot})
	c.AddNet("a", g0.ID, g1.ID)
	c.AddNet("b", g1.ID, g0.ID)
	if _, err := ExtractCritical(c, DefaultModel(), zeroSkew(DefaultModel(), 1000), 4); err == nil {
		t.Fatal("expected cycle error")
	}
}
