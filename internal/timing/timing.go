// Package timing is the static timing analysis substrate used by skew
// optimization: it extracts sequentially adjacent flip-flop pairs from a
// placed netlist and computes the maximum and minimum combinational delays
// D_max/D_min between them under the Elmore delay model (the paper's
// Section VII setup uses exactly this model).
//
// Units match the rest of the repository: micrometers, picoseconds,
// kilo-ohms, femtofarads.
package timing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rotaryclk/internal/netlist"
)

// ErrCycle reports a combinational cycle: the circuit has a gate loop not
// broken by a flip-flop, so no topological propagation order exists. It is a
// property of the input netlist, not of the analysis.
var ErrCycle = errors.New("timing: combinational cycle detected")

// Model holds the timing calibration: per-function intrinsic delays, the
// driver output resistance, the interconnect RC, and the sequential
// element's setup/hold requirements.
type Model struct {
	Intrinsic map[netlist.Func]float64 // ps, switching delay of the gate itself
	DriveRes  float64                  // kOhm, driver output resistance
	RWire     float64                  // kOhm/um
	CWire     float64                  // fF/um
	CPin      float64                  // fF, input pin capacitance
	TSetup    float64                  // ps
	THold     float64                  // ps

	// Implicit buffering. Physical synthesis buffers high-fanout and long
	// nets, so the load a driver actually sees saturates. MaxFanout caps
	// the number of pin loads and MaxWireLoad the wire length (um) charged
	// to the driver; LBuf is the length beyond which wire delay grows
	// linearly (repeatered) instead of quadratically.
	MaxFanout   int
	MaxWireLoad float64
	LBuf        float64
}

// DefaultModel returns a 100 nm-class calibration (bptm-style interconnect,
// gate delays in the tens of picoseconds) consistent with the paper's 1 GHz
// operating point.
func DefaultModel() Model {
	return Model{
		Intrinsic: map[netlist.Func]float64{
			netlist.FuncBuf:  18,
			netlist.FuncNot:  12,
			netlist.FuncAnd:  28,
			netlist.FuncNand: 20,
			netlist.FuncOr:   30,
			netlist.FuncNor:  24,
			netlist.FuncXor:  42,
			netlist.FuncXnor: 44,
			netlist.FuncDFF:  35, // clock-to-Q
			netlist.FuncNone: 20,
		},
		DriveRes:    0.6,
		RWire:       0.0001,
		CWire:       0.2,
		CPin:        8,
		TSetup:      30,
		THold:       15,
		MaxFanout:   4,
		MaxWireLoad: 300,
		LBuf:        500,
	}
}

// wireDelay returns the interconnect delay of a point-to-point connection of
// length L: quadratic Elmore up to LBuf, then linear (repeatered).
func (m Model) wireDelay(L float64) float64 {
	if m.LBuf <= 0 || L <= m.LBuf {
		return m.RWire * L * (m.CWire*L/2 + m.CPin)
	}
	atBuf := m.RWire * m.LBuf * (m.CWire*m.LBuf/2 + m.CPin)
	slope := m.RWire * (m.CWire*m.LBuf + m.CPin)
	return atBuf + slope*(L-m.LBuf)
}

// driverLoad returns the capacitance charged to a driver with the given
// total net capacitance, saturating at the implicit-buffering cap.
func (m Model) driverLoad(cTotal float64) float64 {
	cap := m.CPin*float64(m.MaxFanout) + m.CWire*m.MaxWireLoad
	if m.MaxFanout <= 0 || cTotal <= cap {
		return cTotal
	}
	return cap
}

// Pair records one sequentially adjacent flip-flop pair i |-> j with its
// extreme combinational delays over all connecting paths.
type Pair struct {
	From, To   int // cell IDs of the launching and capturing flip-flop
	DMax, DMin float64
}

// Result is the output of Analyze.
type Result struct {
	Pairs []Pair
	// MaxComb is the largest D_max over all pairs, the critical
	// combinational delay of the circuit.
	MaxComb float64
}

// PermissibleRange returns the skew window [lo, hi] for t_i - t_j of a pair
// under period T and slack margin M (the Fishburn constraints (6)-(7)):
//
//	lo = M + t_hold - D_min     hi = T - D_max - t_setup - M
func (m Model) PermissibleRange(p Pair, T, M float64) (lo, hi float64) {
	return M + m.THold - p.DMin, T - p.DMax - m.TSetup - M
}

// edge is one timing arc: driver cell -> sink cell with Elmore delay. net is
// the index into Circuit.Nets of the connection the arc crosses, so path
// extraction can map a critical path back to the nets it uses.
type edge struct {
	to    int
	net   int32
	delay float64
}

// buildArcs constructs the timing arcs of the placed circuit. Delay from
// driver u to sink v over u's fanout net is
//
//	intrinsic(u) + DriveRes * C_net + r L (c L / 2 + CPin)
//
// with C_net the total capacitance the driver sees (Elmore star model).
func buildArcs(c *netlist.Circuit, m Model) [][]edge {
	adj := make([][]edge, len(c.Cells))
	for ni, net := range c.Nets {
		drv := net.Driver()
		if drv < 0 || len(net.Pins) < 2 {
			continue
		}
		du := c.Cells[drv]
		if du.Kind == netlist.Output {
			continue
		}
		cTotal := 0.0
		for _, sv := range net.Sinks() {
			L := du.Pos.Manhattan(c.Cells[sv].Pos)
			cTotal += m.CWire*L + m.CPin
		}
		intr, ok := m.Intrinsic[du.Fn]
		if !ok {
			intr = m.Intrinsic[netlist.FuncNone]
		}
		load := m.driverLoad(cTotal)
		for _, sv := range net.Sinks() {
			L := du.Pos.Manhattan(c.Cells[sv].Pos)
			d := intr + m.DriveRes*load + m.wireDelay(L)
			adj[drv] = append(adj[drv], edge{to: sv, net: int32(ni), delay: d})
		}
	}
	return adj
}

// topoOrder returns a topological index per cell for combinational
// propagation (flip-flops act as sources; arcs into flip-flops are capture
// points and carry no ordering constraint). It errors on a combinational
// cycle.
func topoOrder(c *netlist.Circuit, adj [][]edge) ([]int, error) {
	n := len(c.Cells)
	indeg := make([]int, n)
	for u := range adj {
		for _, e := range adj[u] {
			if c.Cells[e.to].Kind != netlist.FF {
				indeg[e.to]++
			}
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	idx := make([]int, n)
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		idx[v] = seen
		seen++
		for _, e := range adj[v] {
			if c.Cells[e.to].Kind == netlist.FF {
				continue
			}
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("%w (%d of %d cells ordered)", ErrCycle, seen, n)
	}
	return idx, nil
}

// Analyze runs block-based STA over the placed circuit and returns the
// sequential adjacency pairs. It returns an error on combinational cycles.
func Analyze(c *netlist.Circuit, m Model) (*Result, error) {
	n := len(c.Cells)
	adj := buildArcs(c, m)
	topoIdx, err := topoOrder(c, adj)
	if err != nil {
		return nil, err
	}

	dmax := make([]float64, n)
	dmin := make([]float64, n)
	stamp := make([]int, n)
	epoch := 0
	pairIdx := map[int64]int{}
	res := &Result{}
	reach := make([]int, 0, n)

	for _, src := range c.FlipFlops() {
		epoch++
		// Discover the combinational cone of src (stop at flip-flops).
		reach = reach[:0]
		stamp[src] = epoch
		reach = append(reach, src)
		for qi := 0; qi < len(reach); qi++ {
			u := reach[qi]
			if u != src && c.Cells[u].Kind == netlist.FF {
				continue
			}
			for _, e := range adj[u] {
				if stamp[e.to] != epoch {
					stamp[e.to] = epoch
					reach = append(reach, e.to)
				}
			}
		}
		// Relax in topological order.
		sort.Slice(reach, func(a, b int) bool { return topoIdx[reach[a]] < topoIdx[reach[b]] })
		for _, u := range reach {
			dmax[u], dmin[u] = math.Inf(-1), math.Inf(1)
		}
		dmax[src], dmin[src] = 0, 0
		// Self-loop paths (src back to its own D input) are tracked
		// separately so they cannot corrupt the source seed.
		selfMax, selfMin := math.Inf(-1), math.Inf(1)
		for _, u := range reach {
			if (u != src && c.Cells[u].Kind == netlist.FF) || math.IsInf(dmax[u], -1) {
				continue
			}
			for _, e := range adj[u] {
				v := e.to
				if stamp[v] != epoch {
					continue
				}
				if v == src {
					selfMax = math.Max(selfMax, dmax[u]+e.delay)
					selfMin = math.Min(selfMin, dmin[u]+e.delay)
					continue
				}
				if d := dmax[u] + e.delay; d > dmax[v] {
					dmax[v] = d
				}
				if d := dmin[u] + e.delay; d < dmin[v] {
					dmin[v] = d
				}
			}
		}
		// Record flip-flop capture points (including self-loops).
		record := func(v int, dMax, dMin float64) {
			key := int64(src)<<32 | int64(v)
			if pi, ok := pairIdx[key]; ok {
				p := &res.Pairs[pi]
				p.DMax = math.Max(p.DMax, dMax)
				p.DMin = math.Min(p.DMin, dMin)
			} else {
				pairIdx[key] = len(res.Pairs)
				res.Pairs = append(res.Pairs, Pair{From: src, To: v, DMax: dMax, DMin: dMin})
			}
			if dMax > res.MaxComb {
				res.MaxComb = dMax
			}
		}
		if !math.IsInf(selfMax, -1) {
			record(src, selfMax, selfMin)
		}
		for _, v := range reach {
			if v == src || c.Cells[v].Kind != netlist.FF || math.IsInf(dmax[v], -1) {
				continue
			}
			record(v, dmax[v], dmin[v])
		}
	}
	return res, nil
}
