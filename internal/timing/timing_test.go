package timing

import (
	"math"
	"testing"

	"rotaryclk/internal/geom"
	"rotaryclk/internal/netlist"
)

// chain builds ff0 -> g0 -> g1 -> ff1 with all cells at given positions.
func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain")
	c.Die = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
	f0 := c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.FuncNand})
	g1 := c.AddCell(&netlist.Cell{Name: "g1", Kind: netlist.Gate, Fn: netlist.FuncNot})
	f1 := c.AddCell(&netlist.Cell{Name: "ff1", Kind: netlist.FF, Fn: netlist.FuncDFF})
	c.AddNet("n0", f0.ID, g0.ID)
	c.AddNet("n1", g0.ID, g1.ID)
	c.AddNet("n2", g1.ID, f1.ID)
	// ff1 needs exactly one fanin (it has n2); ff0's D is left dangling on
	// purpose -- no, Validate requires one fanin. Feed ff0 from g1 too? That
	// would create a second pair. Give ff0 its own driver net from g1.
	c.AddNet("n3", f1.ID, g0.ID) // ff1.Q loops back into g0 (second input)
	// ff0 fanin: drive it from g1 as well.
	c.Nets[2].Pins = append(c.Nets[2].Pins, f0.ID)
	f0.Fanin = append(f0.Fanin, 2)
	for _, cell := range c.Cells {
		cell.Pos = geom.Pt(0, 0)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeChain(t *testing.T) {
	c := chain(t)
	m := DefaultModel()
	res, err := Analyze(c, m)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: ff0 -> ff1 (via g0,g1), ff0 -> ff0 (via g0,g1), ff1 -> ff1
	// (via g0,g1), ff1 -> ff0 (via g0, g1).
	if len(res.Pairs) != 4 {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
	// With all cells co-located, wire RC is zero; check ff0->ff1 delay by
	// hand: DFF intrinsic + drive*C + NAND intrinsic + drive*C + ...
	var p01 *Pair
	for i := range res.Pairs {
		if res.Pairs[i].From == 0 && res.Pairs[i].To == 3 {
			p01 = &res.Pairs[i]
		}
	}
	if p01 == nil {
		t.Fatal("missing pair ff0->ff1")
	}
	// Net n0 load: 1 pin => C = CPin. n1 load: g1 => CPin. n2 load: ff1+ff0 => 2 CPin.
	want := (m.Intrinsic[netlist.FuncDFF] + m.DriveRes*m.CPin) +
		(m.Intrinsic[netlist.FuncNand] + m.DriveRes*m.CPin) +
		(m.Intrinsic[netlist.FuncNot] + m.DriveRes*2*m.CPin)
	if math.Abs(p01.DMax-want) > 1e-9 || math.Abs(p01.DMin-want) > 1e-9 {
		t.Errorf("ff0->ff1 delay = %v/%v, want %v", p01.DMax, p01.DMin, want)
	}
	if res.MaxComb < want {
		t.Errorf("MaxComb = %v < %v", res.MaxComb, want)
	}
}

func TestWireDelayGrowsWithDistance(t *testing.T) {
	c := chain(t)
	m := DefaultModel()
	base, err := Analyze(c, m)
	if err != nil {
		t.Fatal(err)
	}
	// Move g1 far away: the ff0->ff1 path gets slower.
	c.Cells[2].Pos = geom.Pt(900, 900)
	far, err := Analyze(c, m)
	if err != nil {
		t.Fatal(err)
	}
	d0 := pairDelay(base, 0, 3)
	d1 := pairDelay(far, 0, 3)
	if d1 <= d0 {
		t.Errorf("delay did not grow with distance: %v vs %v", d0, d1)
	}
}

func pairDelay(r *Result, from, to int) float64 {
	for _, p := range r.Pairs {
		if p.From == from && p.To == to {
			return p.DMax
		}
	}
	return math.NaN()
}

func TestAnalyzeDivergingPaths(t *testing.T) {
	// ff0 fans out to a fast path (1 gate) and a slow path (3 gates), both
	// converging on ff1: DMax > DMin.
	c := netlist.New("diamond")
	f0 := c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	a := c.AddCell(&netlist.Cell{Name: "a", Kind: netlist.Gate, Fn: netlist.FuncBuf})
	b1 := c.AddCell(&netlist.Cell{Name: "b1", Kind: netlist.Gate, Fn: netlist.FuncXor})
	b2 := c.AddCell(&netlist.Cell{Name: "b2", Kind: netlist.Gate, Fn: netlist.FuncXor})
	f1 := c.AddCell(&netlist.Cell{Name: "ff1", Kind: netlist.FF, Fn: netlist.FuncDFF})
	c.AddNet("q", f0.ID, a.ID, b1.ID)
	c.AddNet("na", a.ID, f1.ID)
	c.AddNet("nb1", b1.ID, b2.ID)
	c.AddNet("nb2", b2.ID, f1.ID)
	// f1 has two fanins (na, nb2): relax the FF single-fanin rule by
	// merging; instead drive f1's D from one net and treat 'na' as feeding
	// b2 as well. Simpler: give f1 one fanin (nb2) and a as another sink of nb1.
	// Rebuild cleanly:
	c = netlist.New("diamond2")
	f0 = c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	a = c.AddCell(&netlist.Cell{Name: "a", Kind: netlist.Gate, Fn: netlist.FuncBuf})
	b1 = c.AddCell(&netlist.Cell{Name: "b1", Kind: netlist.Gate, Fn: netlist.FuncXor})
	mrg := c.AddCell(&netlist.Cell{Name: "m", Kind: netlist.Gate, Fn: netlist.FuncAnd})
	f1 = c.AddCell(&netlist.Cell{Name: "ff1", Kind: netlist.FF, Fn: netlist.FuncDFF})
	c.AddNet("q", f0.ID, a.ID, b1.ID)
	c.AddNet("na", a.ID, mrg.ID)
	c.AddNet("nb", b1.ID, mrg.ID)
	c.AddNet("nm", mrg.ID, f1.ID)
	c.AddNet("qq", f1.ID, a.ID) // keep f1 driving something; also gives f0 a fanin? no
	// f0 needs one fanin: reuse nm.
	c.Nets[3].Pins = append(c.Nets[3].Pins, f0.ID)
	f0.Fanin = append(f0.Fanin, 3)
	for _, cell := range c.Cells {
		cell.Pos = geom.Pt(0, 0)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	p := pairDelayPair(res, f0.ID, f1.ID)
	if p == nil {
		t.Fatal("missing pair")
	}
	if p.DMax <= p.DMin {
		t.Errorf("DMax %v should exceed DMin %v for reconvergent paths", p.DMax, p.DMin)
	}
}

func pairDelayPair(r *Result, from, to int) *Pair {
	for i := range r.Pairs {
		if r.Pairs[i].From == from && r.Pairs[i].To == to {
			return &r.Pairs[i]
		}
	}
	return nil
}

func TestAnalyzeSelfLoop(t *testing.T) {
	// ff0 -> g0 -> ff0: a self pair with From == To.
	c := netlist.New("self")
	f0 := c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.FuncNot})
	c.AddNet("q", f0.ID, g0.ID)
	c.AddNet("d", g0.ID, f0.ID)
	for _, cell := range c.Cells {
		cell.Pos = geom.Pt(0, 0)
	}
	res, err := Analyze(c, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].From != f0.ID || res.Pairs[0].To != f0.ID {
		t.Fatalf("pairs = %+v", res.Pairs)
	}
	if res.Pairs[0].DMax <= 0 {
		t.Errorf("self-loop delay = %v", res.Pairs[0].DMax)
	}
}

func TestAnalyzeCombinationalCycle(t *testing.T) {
	c := netlist.New("cycle")
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.FuncNot})
	g1 := c.AddCell(&netlist.Cell{Name: "g1", Kind: netlist.Gate, Fn: netlist.FuncNot})
	c.AddNet("a", g0.ID, g1.ID)
	c.AddNet("b", g1.ID, g0.ID)
	if _, err := Analyze(c, DefaultModel()); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestAnalyzeGeneratedCircuit(t *testing.T) {
	c, err := netlist.Generate(netlist.GenSpec{Name: "g", Cells: 800, FlipFlops: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no sequential pairs found")
	}
	for _, p := range res.Pairs {
		if p.DMin > p.DMax {
			t.Fatalf("pair %+v has DMin > DMax", p)
		}
		if p.DMin <= 0 {
			t.Fatalf("pair %+v has non-positive DMin", p)
		}
	}
	// The generated circuits must close timing at 1 GHz with zero skew,
	// otherwise the skew optimization experiments start from an infeasible
	// design point.
	if res.MaxComb >= 1000 {
		t.Errorf("MaxComb = %v ps exceeds the 1 GHz period", res.MaxComb)
	}
}

func TestPermissibleRange(t *testing.T) {
	m := DefaultModel()
	p := Pair{DMax: 500, DMin: 100}
	lo, hi := m.PermissibleRange(p, 1000, 0)
	if math.Abs(lo-(m.THold-100)) > 1e-9 {
		t.Errorf("lo = %v", lo)
	}
	if math.Abs(hi-(1000-500-m.TSetup)) > 1e-9 {
		t.Errorf("hi = %v", hi)
	}
	lo2, hi2 := m.PermissibleRange(p, 1000, 50)
	if lo2 <= lo || hi2 >= hi {
		t.Error("slack must shrink the window from both sides")
	}
}

func TestUnknownFuncFallsBack(t *testing.T) {
	c := netlist.New("u")
	f0 := c.AddCell(&netlist.Cell{Name: "ff0", Kind: netlist.FF, Fn: netlist.FuncDFF})
	g0 := c.AddCell(&netlist.Cell{Name: "g0", Kind: netlist.Gate, Fn: netlist.Func(99)})
	f1 := c.AddCell(&netlist.Cell{Name: "ff1", Kind: netlist.FF, Fn: netlist.FuncDFF})
	c.AddNet("a", f0.ID, g0.ID)
	c.AddNet("b", g0.ID, f1.ID)
	c.AddNet("c", f1.ID, f0.ID)
	res, err := Analyze(c, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	p := pairDelayPair(res, f0.ID, f1.ID)
	if p == nil || p.DMax <= 0 {
		t.Fatalf("unknown-function gate broke analysis: %+v", res.Pairs)
	}
}

func TestDriverLoadSaturates(t *testing.T) {
	m := DefaultModel()
	small := m.driverLoad(10)
	if small != 10 {
		t.Errorf("small load altered: %v", small)
	}
	cap := m.CPin*float64(m.MaxFanout) + m.CWire*m.MaxWireLoad
	if got := m.driverLoad(cap * 10); got != cap {
		t.Errorf("load not capped: %v, want %v", got, cap)
	}
	// Disabled cap passes everything through.
	m.MaxFanout = 0
	if got := m.driverLoad(1e6); got != 1e6 {
		t.Errorf("disabled cap still caps: %v", got)
	}
}

func TestWireDelayPiecewise(t *testing.T) {
	m := DefaultModel()
	// Quadratic below LBuf.
	l := m.LBuf / 2
	want := m.RWire * l * (m.CWire*l/2 + m.CPin)
	if got := m.wireDelay(l); math.Abs(got-want) > 1e-12 {
		t.Errorf("short wire delay = %v, want %v", got, want)
	}
	// Continuous at the breakpoint.
	eps := 1e-6
	below := m.wireDelay(m.LBuf - eps)
	above := m.wireDelay(m.LBuf + eps)
	if math.Abs(above-below) > 1e-6 {
		t.Errorf("discontinuity at LBuf: %v vs %v", below, above)
	}
	// Linear beyond: equal increments.
	d1 := m.wireDelay(m.LBuf+1000) - m.wireDelay(m.LBuf+500)
	d2 := m.wireDelay(m.LBuf+1500) - m.wireDelay(m.LBuf+1000)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("beyond-LBuf delay not linear: %v vs %v", d1, d2)
	}
}
