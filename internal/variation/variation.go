// Package variation quantifies clock-skew variability under process
// variations, the motivation of the paper's introduction: interconnect
// variation alone shifts conventional clock-tree skew by ~25% of its nominal
// value (Liu et al. [3]), while a rotary array holds skew variation to a few
// picoseconds (Wood et al. measured 5.5 ps at 950 MHz) because the
// phase-locked rings leave only the short tapping stubs exposed.
//
// The module Monte-Carlo samples per-segment wire R/C (and per-buffer delay)
// multipliers and reports the distribution of skew deviations for
//
//   - a rotary clock assignment: only the stub wires vary; ring phases are
//     locked by construction (plus a small residual ring jitter), and
//   - a conventional buffered clock tree: every root-to-sink segment and
//     buffer varies; shared path segments cancel between nearby sinks.
package variation

import (
	"fmt"
	"math"
	"math/rand"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/clocktree"
	"rotaryclk/internal/rotary"
)

// Options configures the Monte Carlo run.
type Options struct {
	SigmaWire float64 // relative sigma of per-segment wire R and C (default 0.10)
	SigmaBuf  float64 // relative sigma of per-buffer delay (default 0.08)
	RingJit   float64 // residual rotary ring jitter sigma, ps (default 1.5)
	BufDelay  float64 // nominal buffer delay in the tree, ps (default 35)
	BufEvery  float64 // one tree buffer per this much wirelength, um (default 450)
	Samples   int     // Monte Carlo samples (default 500)
	Seed      int64
}

func (o *Options) normalize() {
	if o.SigmaWire <= 0 {
		o.SigmaWire = 0.10
	}
	if o.SigmaBuf <= 0 {
		o.SigmaBuf = 0.08
	}
	if o.RingJit <= 0 {
		o.RingJit = 1.5
	}
	if o.BufDelay <= 0 {
		o.BufDelay = 35
	}
	if o.BufEvery <= 0 {
		o.BufEvery = 450
	}
	if o.Samples <= 0 {
		o.Samples = 500
	}
}

// Stats summarizes skew deviations (sampled skew minus nominal skew) over
// all pairs and samples.
type Stats struct {
	Sigma   float64 // standard deviation, ps
	MeanAbs float64 // mean absolute deviation, ps
	Max     float64 // worst absolute deviation, ps
	Pairs   int
	Samples int
}

// Pair identifies two sink indices whose skew is monitored (typically the
// sequentially adjacent flip-flop pairs).
type Pair struct{ A, B int }

// RotarySkew samples the skew deviation of a rotary assignment: each
// flip-flop's delay is its (locked) ring phase plus the Elmore delay of its
// stub under sampled R/C multipliers, plus residual ring jitter.
func RotarySkew(params rotary.Params, asg *assign.Assignment, pairs []Pair, opt Options) (Stats, error) {
	opt.normalize()
	n := len(asg.Taps)
	for _, p := range pairs {
		if p.A < 0 || p.A >= n || p.B < 0 || p.B >= n {
			return Stats{}, fmt.Errorf("variation: pair %+v out of range (%d taps)", p, n)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	nominal := make([]float64, n)
	for i, tap := range asg.Taps {
		nominal[i] = params.StubDelay(tap.WireLen)
	}
	dev := newAccum()
	delays := make([]float64, n)
	for s := 0; s < opt.Samples; s++ {
		for i, tap := range asg.Taps {
			rMul := 1 + rng.NormFloat64()*opt.SigmaWire
			cMul := 1 + rng.NormFloat64()*opt.SigmaWire
			l := tap.WireLen
			d := 0.5*params.RWire*rMul*params.CWire*cMul*l*l + params.RWire*rMul*params.CFF*l
			d += rng.NormFloat64() * opt.RingJit
			delays[i] = d - nominal[i]
		}
		for _, p := range pairs {
			dev.add(delays[p.A] - delays[p.B])
		}
	}
	return dev.stats(len(pairs), opt.Samples), nil
}

// TreeSkew samples the skew deviation of a conventional buffered clock tree
// over the given sinks: per-edge wire delay (Elmore with sampled R/C) plus
// sampled buffer delays, accumulated root-to-leaf; deviations on shared
// segments cancel between sinks with a common ancestor path, exactly as in a
// real tree.
func TreeSkew(params rotary.Params, root *clocktree.Node, numSinks int, pairs []Pair, opt Options) (Stats, error) {
	opt.normalize()
	for _, p := range pairs {
		if p.A < 0 || p.A >= numSinks || p.B < 0 || p.B >= numSinks {
			return Stats{}, fmt.Errorf("variation: pair %+v out of range (%d sinks)", p, numSinks)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	dev := newAccum()
	arrival := make([]float64, numSinks)
	for s := 0; s < opt.Samples; s++ {
		var walk func(n *clocktree.Node, acc float64)
		walk = func(n *clocktree.Node, acc float64) {
			if len(n.Children) == 0 {
				if n.Sink >= 0 && n.Sink < numSinks {
					arrival[n.Sink] = acc
				}
				return
			}
			for _, ch := range n.Children {
				l := n.Pos.Manhattan(ch.Pos)
				rMul := 1 + rng.NormFloat64()*opt.SigmaWire
				cMul := 1 + rng.NormFloat64()*opt.SigmaWire
				wire := 0.5 * params.RWire * rMul * params.CWire * cMul * l * l
				nomWire := 0.5 * params.RWire * params.CWire * l * l
				nBuf := 1 + int(l/opt.BufEvery)
				var buf, nomBuf float64
				for b := 0; b < nBuf; b++ {
					buf += opt.BufDelay * (1 + rng.NormFloat64()*opt.SigmaBuf)
					nomBuf += opt.BufDelay
				}
				walk(ch, acc+(wire-nomWire)+(buf-nomBuf))
			}
		}
		walk(root, 0)
		for _, p := range pairs {
			dev.add(arrival[p.A] - arrival[p.B])
		}
	}
	return dev.stats(len(pairs), opt.Samples), nil
}

// accum is a running deviation accumulator.
type accum struct {
	n          int
	sum, sumSq float64
	sumAbs     float64
	max        float64
}

func newAccum() *accum { return &accum{} }

func (a *accum) add(v float64) {
	a.n++
	a.sum += v
	a.sumSq += v * v
	av := math.Abs(v)
	a.sumAbs += av
	if av > a.max {
		a.max = av
	}
}

func (a *accum) stats(pairs, samples int) Stats {
	if a.n == 0 {
		return Stats{Pairs: pairs, Samples: samples}
	}
	mean := a.sum / float64(a.n)
	varc := a.sumSq/float64(a.n) - mean*mean
	if varc < 0 {
		varc = 0
	}
	return Stats{
		Sigma:   math.Sqrt(varc),
		MeanAbs: a.sumAbs / float64(a.n),
		Max:     a.max,
		Pairs:   pairs,
		Samples: samples,
	}
}
