package variation

import (
	"math/rand"
	"testing"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/clocktree"
	"rotaryclk/internal/geom"
	"rotaryclk/internal/rotary"
)

func setup(t *testing.T) (rotary.Params, *assign.Assignment, []geom.Point, []Pair) {
	t.Helper()
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(4000, 4000))
	arr, err := rotary.NewArray(die, 3, 3, 0.6, rotary.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var ffs []assign.FF
	var pos []geom.Point
	for i := 0; i < 40; i++ {
		p := geom.Pt(rng.Float64()*4000, rng.Float64()*4000)
		ffs = append(ffs, assign.FF{Cell: i, Pos: p, Target: rng.Float64() * 1000})
		pos = append(pos, p)
	}
	asg, err := assign.MinCost(&assign.Problem{Array: arr, FFs: ffs})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []Pair
	for i := 0; i+1 < len(ffs); i += 2 {
		pairs = append(pairs, Pair{A: i, B: i + 1})
	}
	return arr.Params, asg, pos, pairs
}

func TestRotarySkewSmall(t *testing.T) {
	params, asg, _, pairs := setup(t)
	st, err := RotarySkew(params, asg, pairs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sigma <= 0 {
		t.Fatalf("sigma = %v", st.Sigma)
	}
	// The paper's selling point: rotary skew variation is a few ps.
	if st.Sigma > 10 {
		t.Errorf("rotary skew sigma %v ps implausibly large", st.Sigma)
	}
	if st.Max < st.MeanAbs {
		t.Errorf("max %v below mean abs %v", st.Max, st.MeanAbs)
	}
}

func TestTreeSkewLargerThanRotary(t *testing.T) {
	params, asg, pos, pairs := setup(t)
	rot, err := RotarySkew(params, asg, pairs, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := clocktree.Build(pos)
	tree, err := TreeSkew(params, root, len(pos), pairs, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Conventional trees see buffer + long-wire variation on every path:
	// their skew sigma must dominate the rotary stubs by a wide margin
	// (the paper's motivating observation).
	if tree.Sigma < 3*rot.Sigma {
		t.Errorf("tree sigma %v not clearly above rotary sigma %v", tree.Sigma, rot.Sigma)
	}
}

func TestSkewDeterministicBySeed(t *testing.T) {
	params, asg, _, pairs := setup(t)
	a, err := RotarySkew(params, asg, pairs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RotarySkew(params, asg, pairs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different stats: %+v vs %+v", a, b)
	}
	c, err := RotarySkew(params, asg, pairs, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different seeds gave identical stats")
	}
}

func TestPairValidation(t *testing.T) {
	params, asg, pos, _ := setup(t)
	if _, err := RotarySkew(params, asg, []Pair{{A: 0, B: 999}}, Options{}); err == nil {
		t.Error("out-of-range pair accepted")
	}
	root := clocktree.Build(pos)
	if _, err := TreeSkew(params, root, len(pos), []Pair{{A: -1, B: 0}}, Options{}); err == nil {
		t.Error("negative pair accepted")
	}
}

func TestEmptyPairs(t *testing.T) {
	params, asg, _, _ := setup(t)
	st, err := RotarySkew(params, asg, nil, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sigma != 0 || st.Pairs != 0 {
		t.Errorf("empty pairs stats = %+v", st)
	}
}

func TestVariationScalesWithSigma(t *testing.T) {
	params, asg, _, pairs := setup(t)
	lo, err := RotarySkew(params, asg, pairs, Options{Seed: 6, SigmaWire: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RotarySkew(params, asg, pairs, Options{Seed: 6, SigmaWire: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	// With the same residual jitter, larger wire sigma means larger skew
	// spread (jitter floors the comparison, so only require monotone).
	if hi.Sigma <= lo.Sigma {
		t.Errorf("sigma did not grow with wire variation: %v vs %v", lo.Sigma, hi.Sigma)
	}
}
