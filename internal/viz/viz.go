// Package viz renders placements, rotary ring arrays, and tapping
// assignments as standalone SVG files, so a flow result can be inspected
// visually: cells as grey squares, flip-flops colored, rings as double
// square outlines, and each tapping stub as a line from the ring to its
// flip-flop.
package viz

import (
	"fmt"
	"io"
	"strings"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/geom"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/rotary"
)

// Options controls rendering.
type Options struct {
	Width     float64 // output width in px (default 900; height follows aspect)
	ShowCells bool    // draw non-flip-flop cells (default true via New)
	ShowNets  bool    // draw signal nets as thin lines (off by default: dense)
}

// Scene accumulates layers and writes one SVG.
type Scene struct {
	die  geom.Rect
	opt  Options
	body strings.Builder
}

// NewScene starts a scene over the given die outline.
func NewScene(die geom.Rect, opt Options) *Scene {
	if opt.Width <= 0 {
		opt.Width = 900
	}
	s := &Scene{die: die, opt: opt}
	return s
}

// scale maps die coordinates to pixel coordinates (SVG y grows downward).
func (s *Scene) scale() float64 {
	if s.die.W() <= 0 {
		return 1
	}
	return s.opt.Width / s.die.W()
}

func (s *Scene) px(p geom.Point) (float64, float64) {
	k := s.scale()
	return (p.X - s.die.Lo.X) * k, (s.die.Hi.Y - p.Y) * k
}

// AddCircuit draws the circuit's cells: gates light grey, flip-flops blue,
// pads dark ticks on the boundary.
func (s *Scene) AddCircuit(c *netlist.Circuit) {
	k := s.scale()
	if s.opt.ShowNets {
		for _, n := range c.Nets {
			if len(n.Pins) < 2 {
				continue
			}
			dx, dy := s.px(c.Cells[n.Pins[0]].Pos)
			for _, sv := range n.Sinks() {
				x, y := s.px(c.Cells[sv].Pos)
				fmt.Fprintf(&s.body,
					`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-width="0.4"/>`+"\n",
					dx, dy, x, y)
			}
		}
	}
	for _, cell := range c.Cells {
		x, y := s.px(cell.Pos)
		w, h := cell.W*k, cell.H*k
		switch {
		case cell.Kind == netlist.FF:
			fmt.Fprintf(&s.body,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#2b6fb3" opacity="0.9"/>`+"\n",
				x-w/2, y-h/2, maxf(w, 3), maxf(h, 3))
		case cell.Fixed:
			fmt.Fprintf(&s.body,
				`<rect x="%.1f" y="%.1f" width="4" height="4" fill="#333"/>`+"\n", x-2, y-2)
		case s.opt.ShowCells:
			fmt.Fprintf(&s.body,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#bbb" opacity="0.6"/>`+"\n",
				x-w/2, y-h/2, maxf(w, 2), maxf(h, 2))
		}
	}
}

// AddArray draws the rotary rings as double square outlines with their IDs.
func (s *Scene) AddArray(arr *rotary.Array) {
	k := s.scale()
	for _, r := range arr.Rings {
		b := r.Bounds()
		x, y := s.px(geom.Pt(b.Lo.X, b.Hi.Y))
		w, h := b.W()*k, b.H()*k
		fmt.Fprintf(&s.body,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#b3402b" stroke-width="2"/>`+"\n",
			x, y, w, h)
		inset := 4.0
		fmt.Fprintf(&s.body,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#b3402b" stroke-width="1" opacity="0.6"/>`+"\n",
			x+inset, y+inset, maxf(w-2*inset, 1), maxf(h-2*inset, 1))
		cx, cy := s.px(r.Center)
		fmt.Fprintf(&s.body,
			`<text x="%.1f" y="%.1f" font-size="11" fill="#b3402b" text-anchor="middle">R%d</text>`+"\n",
			cx, cy, r.ID)
	}
}

// AddTaps draws one line per flip-flop from its tapping point to the
// flip-flop, green for normal polarity and orange for complementary taps.
func (s *Scene) AddTaps(asg *assign.Assignment, ffPos []geom.Point) {
	for i, tap := range asg.Taps {
		if i >= len(ffPos) {
			break
		}
		x1, y1 := s.px(tap.Point)
		x2, y2 := s.px(ffPos[i])
		color := "#2ba35c"
		if tap.Complement {
			color = "#d9822b"
		}
		fmt.Fprintf(&s.body,
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.2"/>`+"\n",
			x1, y1, x2, y2, color)
		fmt.Fprintf(&s.body,
			`<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n", x1, y1, color)
	}
}

// WriteTo writes the assembled SVG document.
func (s *Scene) WriteTo(w io.Writer) (int64, error) {
	k := s.scale()
	width := s.opt.Width
	height := s.die.H() * k
	var doc strings.Builder
	fmt.Fprintf(&doc, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&doc, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fdfdfb" stroke="#444"/>`+"\n", width, height)
	doc.WriteString(s.body.String())
	doc.WriteString("</svg>\n")
	n, err := io.WriteString(w, doc.String())
	return int64(n), err
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
