package viz

import (
	"strings"
	"testing"

	"rotaryclk/internal/assign"
	"rotaryclk/internal/core"
	"rotaryclk/internal/geom"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/rotary"
)

func renderFlow(t *testing.T, opt Options) string {
	t.Helper()
	c, err := netlist.Generate(netlist.GenSpec{Name: "viz", Cells: 200, FlipFlops: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(c, core.Config{NumRings: 4, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScene(c.Die, opt)
	s.AddCircuit(c)
	s.AddArray(res.Array)
	var ffPos []geom.Point
	for _, id := range res.FFCells {
		ffPos = append(ffPos, c.Cells[id].Pos)
	}
	s.AddTaps(res.Assign, ffPos)
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSceneProducesValidSVG(t *testing.T) {
	svg := renderFlow(t, Options{ShowCells: true})
	if !strings.HasPrefix(svg, "<svg xmlns=") {
		t.Fatalf("not an SVG document:\n%.80s", svg)
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("unterminated SVG")
	}
	// Rings drawn (4 rings -> at least 8 rect outlines + labels).
	if n := strings.Count(svg, `stroke="#b3402b"`); n < 8 {
		t.Errorf("only %d ring strokes", n)
	}
	if !strings.Contains(svg, ">R0<") {
		t.Error("ring label missing")
	}
	// One tap line + marker per flip-flop.
	if n := strings.Count(svg, `<circle`); n != 24 {
		t.Errorf("tap markers = %d, want 24", n)
	}
	// Flip-flops drawn in blue.
	if n := strings.Count(svg, `fill="#2b6fb3"`); n != 24 {
		t.Errorf("flip-flop rects = %d, want 24", n)
	}
}

func TestSceneOptions(t *testing.T) {
	withCells := renderFlow(t, Options{ShowCells: true})
	withoutCells := renderFlow(t, Options{})
	if strings.Count(withCells, `fill="#bbb"`) <= strings.Count(withoutCells, `fill="#bbb"`) {
		t.Error("ShowCells had no effect")
	}
	withNets := renderFlow(t, Options{ShowNets: true})
	if strings.Count(withNets, `stroke="#ccc"`) == 0 {
		t.Error("ShowNets drew no nets")
	}
}

func TestSceneCoordinateMapping(t *testing.T) {
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 50))
	s := NewScene(die, Options{Width: 200}) // scale 2, height 100
	x, y := s.px(geom.Pt(0, 0))
	if x != 0 || y != 100 {
		t.Errorf("origin maps to (%v,%v), want (0,100): SVG y is flipped", x, y)
	}
	x, y = s.px(geom.Pt(100, 50))
	if x != 200 || y != 0 {
		t.Errorf("top-right maps to (%v,%v), want (200,0)", x, y)
	}
}

func TestSceneEmptyLayers(t *testing.T) {
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	s := NewScene(die, Options{})
	s.AddTaps(&assign.Assignment{}, nil)
	s.AddArray(&rotary.Array{Params: rotary.DefaultParams()})
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("document incomplete")
	}
}

func TestTapPolarityColors(t *testing.T) {
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	s := NewScene(die, Options{})
	asg := &assign.Assignment{
		Taps: []rotary.Tap{
			{Point: geom.Pt(10, 10), Complement: false},
			{Point: geom.Pt(20, 20), Complement: true},
		},
		Ring: []int{0, 0},
	}
	s.AddTaps(asg, []geom.Point{geom.Pt(12, 12), geom.Pt(22, 22)})
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.Contains(svg, "#2ba35c") {
		t.Error("normal-polarity color missing")
	}
	if !strings.Contains(svg, "#d9822b") {
		t.Error("complementary-polarity color missing")
	}
}
