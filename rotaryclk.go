// Package rotaryclk is an integrated placement and clock-skew optimization
// library for rotary traveling-wave clocking, reproducing Venkataraman, Hu
// and Liu, "Integrated Placement and Skew Optimization for Rotary Clocking"
// (DATE 2006 / IEEE TVLSI 2007).
//
// Rotary clock rings deliver a clock whose phase varies with position along
// the ring. The library breaks the resulting placement/skew chicken-and-egg
// problem with the paper's flexible-tapping relaxation and six-stage flow:
//
//	c, _ := rotaryclk.Generate(rotaryclk.GenSpec{Name: "demo", Cells: 800, FlipFlops: 100, Seed: 1})
//	res, _ := rotaryclk.Run(c, rotaryclk.Config{NumRings: 9})
//	fmt.Println("tapping WL improved:", res.Base.TapWL, "->", res.Final.TapWL)
//
// The facade re-exports the library's main entry points; the full toolbox
// (placer, STA, LP/ILP solvers, min-cost flow, skew scheduling, power
// models, benchmark suite) lives in the internal packages and is exercised
// through this API, the cmd/ tools, and the examples/ programs.
package rotaryclk

import (
	"io"

	"rotaryclk/internal/core"
	"rotaryclk/internal/geom"
	"rotaryclk/internal/netlist"
	"rotaryclk/internal/rotary"
)

// Geometry primitives (micrometers).
type (
	// Point is a location in the placement plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (the die, ring bounds, ...).
	Rect = geom.Rect
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Netlist types.
type (
	// Circuit is a gate-level sequential circuit with placement.
	Circuit = netlist.Circuit
	// Cell is one placeable circuit element.
	Cell = netlist.Cell
	// Net is one signal net (Pins[0] drives).
	Net = netlist.Net
	// GenSpec parameterizes the synthetic benchmark generator.
	GenSpec = netlist.GenSpec
	// Kind classifies a cell (gate, flip-flop, pad).
	Kind = netlist.Kind
)

// Cell kinds.
const (
	// KindGate is a combinational standard cell.
	KindGate = netlist.Gate
	// KindFF is a D flip-flop (clock sink).
	KindFF = netlist.FF
	// KindInput is a primary input pad.
	KindInput = netlist.Input
	// KindOutput is a primary output pad.
	KindOutput = netlist.Output
)

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit { return netlist.New(name) }

// Generate builds a synthetic sequential circuit (deterministic per spec).
func Generate(spec GenSpec) (*Circuit, error) { return netlist.Generate(spec) }

// ParseBench reads an ISCAS89 .bench netlist.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return netlist.ParseBench(name, r)
}

// WriteBench writes a circuit in ISCAS89 .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// Rotary clock types.
type (
	// Params holds the rotary ring electrical and timing constants.
	Params = rotary.Params
	// Ring is one square rotary clock ring.
	Ring = rotary.Ring
	// Array is a grid of phase-locked rings covering the die.
	Array = rotary.Array
	// Tap is a solved tapping point (ring point + stub) for a flip-flop.
	Tap = rotary.Tap
)

// DefaultParams returns the 1 GHz / 100 nm-class calibration used by all
// experiments.
func DefaultParams() Params { return rotary.DefaultParams() }

// NewArray tiles the die with nx x ny rotary rings.
func NewArray(die Rect, nx, ny int, fill float64, p Params) (*Array, error) {
	return rotary.NewArray(die, nx, ny, fill, p)
}

// SolveTap finds the minimum-stub tapping point on ring r realizing clock
// delay target tHat (ps, modulo the period) for a flip-flop at ff — the
// flexible-tapping relaxation of Section III.
func SolveTap(r *Ring, p Params, ff Point, tHat float64) (Tap, error) {
	return rotary.SolveTap(r, p, ff, tHat)
}

// Flow types.
type (
	// Config parameterizes the integrated flow.
	Config = core.Config
	// Result carries the flow's metrics, schedule and assignment.
	Result = core.Result
	// Metrics are the paper's per-design measurements.
	Metrics = core.Metrics
	// Assigner selects the stage-3 formulation.
	Assigner = core.Assigner
	// SkewObjective selects the stage-4 cost-driven objective.
	SkewObjective = core.SkewObjective
	// StageError is the typed failure of one flow stage; match with
	// errors.As to branch on Result stage and failure Kind.
	StageError = core.StageError
	// StageEvent records one recovery or degradation action taken by Run
	// (Result.Events).
	StageEvent = core.StageEvent
	// FailureKind classifies a stage failure (Infeasible, NonConverged,
	// BudgetExceeded, InvalidInput, Internal). Named FailureKind at the
	// facade because Kind already names the cell classifier.
	FailureKind = core.Kind
)

// Stage-failure kinds (StageError.Kind, StageEvent.Kind).
const (
	// Infeasible: the posed subproblem has no solution.
	Infeasible = core.Infeasible
	// NonConverged: an iterative solver stagnated short of tolerance.
	NonConverged = core.NonConverged
	// BudgetExceeded: a solver hit its iteration or node budget.
	BudgetExceeded = core.BudgetExceeded
	// InvalidInput: caller-supplied data is malformed.
	InvalidInput = core.InvalidInput
	// Internal: a flow invariant broke; a bug, not an input property.
	Internal = core.Internal
)

// Stage-3 assignment formulations.
const (
	// NetworkFlow minimizes total tapping wirelength (Section V).
	NetworkFlow = core.NetworkFlow
	// ILP minimizes the maximum ring load capacitance (Section VI).
	ILP = core.ILP
)

// Stage-4 cost-driven skew objectives.
const (
	// MinDelta minimizes the maximum anchor mismatch.
	MinDelta = core.MinDelta
	// WeightedSum minimizes the weighted sum of anchor mismatches.
	WeightedSum = core.WeightedSum
)

// Run executes the integrated placement and skew optimization flow of
// Fig. 3 on the circuit, writing the final placement onto it.
func Run(c *Circuit, cfg Config) (*Result, error) { return core.Run(c, cfg) }

// SizePhysical equips a circuit parsed from a purely logical format (such as
// an ISCAS89 .bench file) with a die, cell footprints at the given
// utilization (0 = default 0.7), boundary pads, and a deterministic seed
// placement, making it ready for Run.
func SizePhysical(c *Circuit, util float64) error { return netlist.SizePhysical(c, util) }
