#!/bin/sh
# CI entry points for the repo: test, race, bench.
#
#   scripts/ci.sh test    go build + gofmt -l + go vet + go test over every
#                         package (tier-1 gate)
#   scripts/ci.sh race    go test -race over every package (parallel kernels)
#   scripts/ci.sh fuzz    smoke-fuzz every Fuzz target (10s each) on top of
#                         the checked-in corpora under testdata/fuzz/
#   scripts/ci.sh serve   end-to-end daemon smoke: rotaryd under rotaryload
#                         (concurrent jobs, zero failures), a deadline-bound
#                         oversized job that must degrade within its budget,
#                         and SIGTERM -> graceful drain -> exit 0
#   scripts/ci.sh bench   run the benchmark suite with -benchmem and record
#                         it as BENCH_baseline.json so future PRs have a
#                         perf trajectory to compare against
#   scripts/ci.sh benchcmp
#                         run the placer hot-path benchmarks
#                         (BenchmarkGlobalPlace, BenchmarkSystemBuildVsReuse,
#                         BenchmarkCGSolve) and diff ns/op and allocs/op
#                         against the recorded BENCH_baseline.json, so the
#                         build-once reuse perf claim is reproducible in one
#                         command; the baseline file is NOT rewritten
#   scripts/ci.sh oracle  run the differential-testing campaign
#                         (cmd/rotaryoracle): SEEDS random instances through
#                         every reference solver and metamorphic oracle,
#                         failing with minimized repros under
#                         testdata/repros/ on any violation (default 25
#                         seeds; SEEDS=200 is the acceptance depth)
#   scripts/ci.sh scaling race-enabled 50k-cell generate + place + assign
#                         smoke under a wall-clock budget (SCALING_TIMEOUT,
#                         default 10m), plus the tiny sweep-point unit test;
#                         the full geometric sweep is `make scaling`
#                         (cmd/rotaryscale -> BENCH_scaling.json)
#   scripts/ci.sh eco     ECO smoke: 20 random single-delta edits at 20k
#                         cells through the incremental path, every edit
#                         proven equivalent to the from-scratch arm, mean
#                         edit latency at least 5x faster than a full
#                         re-run (ECO_TIMEOUT, default 15m); the 50k
#                         headline row is `make eco-bench`
#   scripts/ci.sh ml      multilevel placement smoke: the V-cycle identity
#                         and property tests (off path bit-identical at 1 and
#                         8 workers, coarsening invariants, cancellation and
#                         degenerate fallbacks), the corrupt-site oracle
#                         negative test, and a race-enabled 50k-cell
#                         flat-vs-V-cycle sweep point with a 5% wirelength
#                         bound (ML_TIMEOUT, default 15m); the full sweep arm
#                         is `make scaling` (cmd/rotaryscale -ml)
#   scripts/ci.sh timing  timing-driven placement smoke: the critical-path
#                         reweighting identity tests (feature off or boost
#                         disabled must be bit-identical to the base flow,
#                         at 1 and 8 workers), the swallowed-STA-error
#                         surface test, and the Table VIII worst-slack
#                         acceptance run (improvement on >= 2 circuits)
#   scripts/ci.sh golden  run only the golden-table regression harness
#                         (UPDATE=1 re-records the goldens after a reviewed
#                         table change)
#   scripts/ci.sh cover   go test -cover over every package; fails if total
#                         statement coverage drops more than 2 points below
#                         the recorded COVERAGE_baseline.txt (UPDATE=1
#                         re-records the baseline)
#
# BENCHTIME overrides the bench sampling (default 1x: one timed iteration
# per benchmark keeps the whole suite under a couple of minutes; use e.g.
# BENCHTIME=2s for publication-grade numbers).
set -eu

cd "$(dirname "$0")/.."

cmd="${1:-test}"

case "$cmd" in
test)
    go build ./...
    unformatted="$(gofmt -l .)"
    if [ -n "$unformatted" ]; then
        echo "gofmt -l: the following files need formatting:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
    go vet ./...
    go test ./...
    ;;
race)
    go test -race ./...
    ;;
fuzz)
    fuzztime="${FUZZTIME:-10s}"
    go test ./internal/netlist/ -fuzz '^FuzzParseBench$' -fuzztime "$fuzztime"
    go test ./internal/rotary/ -fuzz '^FuzzSolveTap$' -fuzztime "$fuzztime"
    go test ./internal/lp/ -fuzz '^FuzzILPRound$' -fuzztime "$fuzztime"
    go test ./internal/serve/ -fuzz '^FuzzParseJobRequest$' -fuzztime "$fuzztime"
    go test ./internal/serve/ -fuzz '^FuzzParseECORequest$' -fuzztime "$fuzztime"
    ;;
serve)
    # End-to-end daemon smoke: build rotaryd + rotaryload, drive a small
    # concurrent load (zero failures tolerated), prove a deadline-bound big
    # job degrades instead of stalling, then SIGTERM mid-life and require a
    # clean drain (exit 0).
    bin="$(mktemp -d)"
    trap 'rm -rf "$bin"' EXIT
    go build -o "$bin/rotaryd" ./cmd/rotaryd
    go build -o "$bin/rotaryload" ./cmd/rotaryload
    "$bin/rotaryd" -addr 127.0.0.1:0 -addr-file "$bin/addr" -queue 16 -workers 2 &
    pid=$!
    i=0
    while [ ! -s "$bin/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "rotaryd never wrote its address" >&2
            kill "$pid" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
    addr="$(cat "$bin/addr")"
    "$bin/rotaryload" -addr "$addr" -n 12 -c 8 -cells 800 -iters 2 -seed 1
    "$bin/rotaryload" -addr "$addr" -n 2 -c 2 -cells 20000 -iters 2 -deadline-ms 200 -max-p99-ms 5000 -seed 99
    kill -TERM "$pid"
    wait "$pid"
    echo "serve smoke: load + deadline degradation + graceful drain ok"
    ;;
oracle)
    seeds="${SEEDS:-25}"
    go run ./cmd/rotaryoracle -seeds "$seeds" -v
    ;;
bench)
    benchtime="${BENCHTIME:-1x}"
    out="${BENCH_OUT:-BENCH_baseline.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run='^$' -bench . -benchmem -benchtime "$benchtime" ./... | tee "$raw"
    # Convert `go test -bench` lines into a JSON array so the baseline is
    # machine-readable: one object per benchmark with ns/op, B/op,
    # allocs/op, and any custom metrics.
    awk -v benchtime="$benchtime" '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; iters = $2
            line = sep "  {\"name\": \"" name "\", \"iterations\": " iters
            for (i = 3; i < NF; i += 2) {
                unit = $(i + 1)
                gsub(/"/, "", unit)
                line = line ", \"" unit "\": " $i
            }
            print line "}"
            sep = ","
        }
        END { print "]" }
    ' "$raw" > "$out"
    echo "wrote $out (benchtime $benchtime)"
    ;;
benchcmp)
    benchtime="${BENCHTIME:-1x}"
    baseline="${BENCH_BASELINE:-BENCH_baseline.json}"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    go test -run '^$' \
        -bench '^(BenchmarkGlobalPlace|BenchmarkSystemBuildVsReuse|BenchmarkCGSolve)$' \
        -benchmem -benchtime "$benchtime" ./internal/placer/ | tee "$raw"
    echo
    echo "=== comparison against $baseline (ns/op, allocs/op) ==="
    awk -v baseline="$baseline" '
        BEGIN {
            # Index the baseline: one JSON object per line, machine-written
            # by `scripts/ci.sh bench` (name, ns/op, allocs/op fields).
            while ((getline line < baseline) > 0) {
                if (match(line, /"name": "[^"]*"/)) {
                    name = substr(line, RSTART + 9, RLENGTH - 10)
                    ns = ""; al = ""
                    if (match(line, /"ns\/op": [0-9.e+]*/))
                        ns = substr(line, RSTART + 9, RLENGTH - 9)
                    if (match(line, /"allocs\/op": [0-9.e+]*/))
                        al = substr(line, RSTART + 13, RLENGTH - 13)
                    baseNs[name] = ns; baseAl[name] = al
                }
            }
            printf "%-42s %14s %14s %9s %9s\n", "benchmark", "ns/op", "base-ns/op", "ns-ratio", "allocs-x"
        }
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
            ns = $3
            al = ""
            for (i = 4; i < NF; i++)
                if ($(i + 1) == "allocs/op") al = $i
            if (!(name in baseNs)) {
                printf "%-42s %14s %14s %9s %9s\n", name, ns, "(new)", "-", "-"
                next
            }
            nsr = (baseNs[name] > 0) ? ns / baseNs[name] : 0
            alr = (baseAl[name] != "" && baseAl[name] > 0 && al != "") ? baseAl[name] / al : 0
            printf "%-42s %14s %14s %8.2fx %8.2fx\n", name, ns, baseNs[name], nsr, alr
        }
    ' "$raw"
    echo "(ns-ratio < 1 is faster than baseline; allocs-x is the allocation reduction factor)"
    scaling="${BENCH_SCALING:-BENCH_scaling.json}"
    if [ -f "$scaling" ]; then
        echo
        echo "=== size sweep ($scaling, read-only) ==="
        awk '
            BEGIN { printf "%10s %8s %7s %12s %14s %10s\n", "cells", "ffs", "rings", "ns/cell", "allocs/cell", "total-ms" }
            /"cells":/      { gsub(/[^0-9]/, "", $2); cells = $2 }
            /"ffs":/        { gsub(/[^0-9]/, "", $2); ffs = $2 }
            /"rings":/      { gsub(/[^0-9]/, "", $2); rings = $2 }
            /"total_ns":/   { gsub(/[^0-9]/, "", $2); total = $2 }
            /"ns_per_cell":/    { gsub(/[^0-9.]/, "", $2); nspc = $2 }
            /"allocs_per_cell":/ {
                gsub(/[^0-9.]/, "", $2)
                printf "%10d %8d %7d %12.0f %14.1f %10.0f\n", cells, ffs, rings, nspc, $2, total / 1e6
            }
        ' "$scaling"
    fi
    ;;
scaling)
    timeout="${SCALING_TIMEOUT:-10m}"
    go test ./internal/bench/ -run '^TestScalingPoint$' -count=1
    ROTARY_SCALING_SMOKE=1 go test -race -timeout "$timeout" \
        -run '^TestScaling50k$' -count=1 -v ./internal/bench/
    ;;
eco)
    timeout="${ECO_TIMEOUT:-15m}"
    go test ./internal/bench/ -run '^TestECOBenchPoint$' -count=1
    ROTARY_ECO_SMOKE=1 go test -timeout "$timeout" \
        -run '^TestECOSmoke20k$' -count=1 -v ./internal/bench/
    ;;
ml)
    timeout="${ML_TIMEOUT:-15m}"
    go test ./internal/placer/ -run '^(TestMultilevel|TestVCycle|TestCoarsen|TestProjectOverlays|TestInterpolate)' -count=1
    go test ./internal/oracle/ -run '^TestFaultMLCorruptDetected$' -count=1
    ROTARY_ML_SMOKE=1 go test -race -timeout "$timeout" \
        -run '^TestScalingML50k$' -count=1 -v ./internal/bench/
    ;;
timing)
    go test ./internal/core/ -run '^(TestTiming|TestWorstSlack)' -count=1
    go test ./internal/placer/ -run '^TestNetWeight' -count=1
    go test ./internal/oracle/ -run '^TestFaultReweightDetected$' -count=1
    go test -timeout 20m ./internal/exp/ -run '^(TestTimingSmoke|TestVarPairsSurfacesAnalysisError)$' -count=1 -v
    ;;
golden)
    if [ "${UPDATE:-0}" = "1" ]; then
        go test ./internal/exp -run '^TestGolden' -count=1 -update
    else
        go test ./internal/exp -run '^TestGolden' -count=1
    fi
    ;;
cover)
    profile="$(mktemp)"
    trap 'rm -f "$profile"' EXIT
    go test -coverprofile "$profile" ./...
    total="$(go tool cover -func "$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
    echo "total statement coverage: ${total}%"
    if [ "${UPDATE:-0}" = "1" ]; then
        echo "$total" > COVERAGE_baseline.txt
        echo "wrote COVERAGE_baseline.txt"
    elif [ -f COVERAGE_baseline.txt ]; then
        baseline="$(cat COVERAGE_baseline.txt)"
        awk -v t="$total" -v b="$baseline" 'BEGIN {
            if (t + 2.0 < b) {
                printf "coverage regression: %.1f%% is more than 2 points below the %.1f%% baseline\n", t, b
                exit 1
            }
            printf "baseline %.1f%%: ok\n", b
        }'
    else
        echo "no COVERAGE_baseline.txt; run UPDATE=1 scripts/ci.sh cover to record one" >&2
        exit 1
    fi
    ;;
*)
    echo "usage: scripts/ci.sh {test|race|fuzz|serve|bench|benchcmp|scaling|eco|oracle|ml|timing|golden|cover}" >&2
    exit 2
    ;;
esac
